#include "driver/sweep.hh"

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "driver/bench_io.hh"
#include "support/diag.hh"
#include "support/env.hh"
#include "support/faultpoint.hh"
#include "support/logging.hh"

namespace predilp
{

namespace
{

namespace fs = std::filesystem;

// ---- BenchTiming (de)serialization for worker result files ----
//
// Member-pointer tables keep the three operations (emit, parse,
// additive merge) over ~25 fields in lockstep: adding a BenchTiming
// field means adding one table row.

struct CounterField
{
    const char *name;
    std::uint64_t BenchTiming::*member;
};

struct SecondsField
{
    const char *name;
    double BenchTiming::*member;
};

constexpr CounterField counterFields[] = {
    {"compiles", &BenchTiming::compiles},
    {"prefix_compiles", &BenchTiming::prefixCompiles},
    {"prefix_cache_hits", &BenchTiming::prefixCacheHits},
    {"captures", &BenchTiming::captures},
    {"replays", &BenchTiming::replays},
    {"trace_cache_hits", &BenchTiming::traceCacheHits},
    {"result_cache_hits", &BenchTiming::resultCacheHits},
    {"trace_bytes", &BenchTiming::traceBytes},
    {"trace_peak_bytes", &BenchTiming::tracePeakBytes},
    {"captured_bytes", &BenchTiming::capturedBytes},
    {"captured_records", &BenchTiming::capturedRecords},
    {"replayed_records", &BenchTiming::replayedRecords},
    {"store_hits", &BenchTiming::storeHits},
    {"store_misses", &BenchTiming::storeMisses},
    {"store_repairs", &BenchTiming::storeRepairs},
    {"store_writes", &BenchTiming::storeWrites},
    {"store_bytes_mapped", &BenchTiming::storeBytesMapped},
    {"decodes", &BenchTiming::decodes},
    {"decoded_cache_hits", &BenchTiming::decodedCacheHits},
    {"decoded_bytes", &BenchTiming::decodedBytes},
    {"threaded_records", &BenchTiming::threadedRecords},
    {"interp_records", &BenchTiming::interpRecords},
    {"backend_fallbacks", &BenchTiming::backendFallbacks},
    {"batch_fallbacks", &BenchTiming::batchFallbacks},
};

constexpr SecondsField secondsFields[] = {
    {"compile_seconds", &BenchTiming::compileSeconds},
    {"capture_seconds", &BenchTiming::captureSeconds},
    {"replay_seconds", &BenchTiming::replaySeconds},
    {"decode_seconds", &BenchTiming::decodeSeconds},
};

JsonValue
timingToJson(const BenchTiming &timing)
{
    std::vector<std::pair<std::string, JsonValue>> members;
    for (const auto &field : counterFields) {
        members.emplace_back(
            field.name,
            JsonValue::makeInt(
                static_cast<std::int64_t>(timing.*field.member)));
    }
    for (const auto &field : secondsFields) {
        members.emplace_back(
            field.name, JsonValue::makeDouble(timing.*field.member));
    }
    return JsonValue::makeObject(std::move(members));
}

BenchTiming
timingFromJson(const JsonValue &json)
{
    BenchTiming timing;
    for (const auto &field : counterFields) {
        if (const JsonValue *v = json.find(field.name)) {
            timing.*field.member =
                static_cast<std::uint64_t>(v->asInt());
        }
    }
    for (const auto &field : secondsFields) {
        if (const JsonValue *v = json.find(field.name))
            timing.*field.member = v->asDouble();
    }
    return timing;
}

void
mergeTiming(BenchTiming &into, const BenchTiming &from)
{
    for (const auto &field : counterFields)
        into.*field.member += from.*field.member;
    for (const auto &field : secondsFields)
        into.*field.member += from.*field.member;
}

// ---- Axis application ----

std::int64_t
positiveAxisValue(const std::string &axis, const JsonValue &value)
{
    std::int64_t raw = value.asInt();
    if (raw <= 0) {
        throw FatalError("axis '" + axis +
                         "' requires positive integer values");
    }
    return raw;
}

void
applyAxis(SimConfig &sim, const std::string &axis,
          const JsonValue &value)
{
    if (axis == "issue_width") {
        sim.machine.issueWidth =
            static_cast<int>(positiveAxisValue(axis, value));
    } else if (axis == "branches_per_cycle") {
        sim.machine.branchesPerCycle =
            static_cast<int>(positiveAxisValue(axis, value));
    } else if (axis == "mispredict_penalty") {
        sim.machine.mispredictPenalty =
            static_cast<int>(value.asInt());
    } else if (axis == "btb_entries") {
        sim.btbEntries =
            static_cast<std::size_t>(positiveAxisValue(axis, value));
    } else if (axis == "btb_assoc") {
        sim.btbAssociativity =
            static_cast<int>(positiveAxisValue(axis, value));
    } else if (axis == "predictor") {
        sim.predictor = predictorFromName(value.asString());
    } else if (axis == "cache_size_bytes") {
        sim.cacheSizeBytes = positiveAxisValue(axis, value);
    } else if (axis == "cache_line_bytes") {
        sim.cacheLineBytes = positiveAxisValue(axis, value);
    } else if (axis == "cache_assoc") {
        sim.cacheAssociativity =
            static_cast<int>(positiveAxisValue(axis, value));
    } else if (axis == "cache_miss_penalty") {
        sim.cacheMissPenalty = static_cast<int>(value.asInt());
    } else if (axis == "perfect_caches") {
        sim.perfectCaches = value.asBool();
    } else {
        std::string known;
        for (const std::string &name : SweepSpec::knownAxes())
            known += (known.empty() ? "" : ", ") + name;
        throw FatalError("unknown sweep axis '" + axis +
                         "' (known axes: " + known + ")");
    }
}

// ---- Cell rendering ----

/**
 * One cell's JSON object. Both execution paths (sequential and
 * forked) build cells exclusively through this function, and the
 * worker-file round trip is lossless (JsonValue preserves number
 * lexical classes), so the merged cells array is byte-identical to
 * a sequential run's.
 */
JsonValue
cellToJson(const SweepCell &cell, const EvalResponse &response)
{
    std::vector<std::pair<std::string, JsonValue>> axes;
    for (const auto &[name, value] : cell.axisValues)
        axes.emplace_back(name, value);
    std::vector<JsonValue> benchmarks;
    benchmarks.reserve(response.results.size());
    for (const BenchmarkResult &result : response.results) {
        std::vector<std::pair<std::string, JsonValue>> models;
        for (const auto &[model, sim] : result.models) {
            models.emplace_back(
                modelKey(model),
                JsonValue::parse(
                    cellSnapshot(result, model, sim).toJson()));
        }
        std::vector<std::pair<std::string, JsonValue>> provs;
        for (const auto &[model, prov] : result.provenance)
            provs.emplace_back(modelKey(model), prov.toJson());
        benchmarks.push_back(JsonValue::makeObject({
            {"name", JsonValue::makeString(result.name)},
            {"base_cycles",
             JsonValue::makeInt(
                 static_cast<std::int64_t>(result.baseCycles))},
            {"models", JsonValue::makeObject(std::move(models))},
            {"provenance", JsonValue::makeObject(std::move(provs))},
        }));
    }
    return JsonValue::makeObject({
        {"index", JsonValue::makeInt(
                      static_cast<std::int64_t>(cell.index))},
        {"axes", JsonValue::makeObject(std::move(axes))},
        {"request_digest",
         JsonValue::makeString(cell.request.requestDigest())},
        {"config_digest",
         JsonValue::makeString(cell.request.sim.configDigest())},
        {"benchmarks", JsonValue::makeArray(std::move(benchmarks))},
    });
}

/** Mean of the named speedup leaf across a cell's benchmarks.
 * Degraded cells carry no "benchmarks" key and contribute nothing. */
bool
meanSpeedup(const JsonValue &cell, const char *model, double &mean)
{
    const JsonValue *benchmarks = cell.find("benchmarks");
    if (benchmarks == nullptr)
        return false;
    double sum = 0;
    std::size_t count = 0;
    for (const JsonValue &bench : benchmarks->items()) {
        if (const JsonValue *m = bench.at("models").find(model)) {
            if (const JsonValue *s = m->find("speedup")) {
                sum += s->asDouble();
                count += 1;
            }
        }
    }
    if (count == 0)
        return false;
    mean = sum / static_cast<double>(count);
    return true;
}

/**
 * Per-axis crossover summary: for every value of every axis, the
 * mean Full Predication and Cond. Move speedups over all cells at
 * that value (and all their benchmarks), plus the first axis value
 * (in declaration order) where full predication's mean matches or
 * beats partial predication's. Pure function of the cells array, so
 * it is identical for every worker count.
 */
JsonValue
crossoverSummary(const SweepSpec &spec,
                 const std::vector<JsonValue> &cells)
{
    std::vector<JsonValue> axisEntries;
    for (const SweepAxis &axis : spec.axes) {
        std::vector<JsonValue> points;
        const JsonValue *crossover = nullptr;
        for (const JsonValue &value : axis.values) {
            const std::string valueDump = value.dump();
            double fullSum = 0, condSum = 0;
            std::size_t count = 0;
            for (const JsonValue &cell : cells) {
                const JsonValue *coord =
                    cell.at("axes").find(axis.name);
                if (coord == nullptr ||
                    coord->dump() != valueDump) {
                    continue;
                }
                double full = 0, cond = 0;
                if (meanSpeedup(cell, "full_pred", full) &&
                    meanSpeedup(cell, "cond_move", cond)) {
                    fullSum += full;
                    condSum += cond;
                    count += 1;
                }
            }
            if (count == 0)
                continue;
            double fullMean =
                fullSum / static_cast<double>(count);
            double condMean =
                condSum / static_cast<double>(count);
            bool fullWins = fullMean >= condMean;
            if (fullWins && crossover == nullptr)
                crossover = &value;
            points.push_back(JsonValue::makeObject({
                {"value", value},
                {"full_pred_mean",
                 JsonValue::makeDouble(fullMean)},
                {"cond_move_mean",
                 JsonValue::makeDouble(condMean)},
                {"full_wins", JsonValue::makeBool(fullWins)},
            }));
        }
        if (points.empty())
            continue;
        std::vector<std::pair<std::string, JsonValue>> entry;
        entry.emplace_back("axis",
                           JsonValue::makeString(axis.name));
        entry.emplace_back("points",
                           JsonValue::makeArray(std::move(points)));
        if (crossover != nullptr)
            entry.emplace_back("crossover", *crossover);
        axisEntries.push_back(
            JsonValue::makeObject(std::move(entry)));
    }
    return JsonValue::makeArray(std::move(axisEntries));
}

// ---- Trace-affine sharding ----

/**
 * Key identifying which captured traces a cell replays: its request
 * with every replay-only SimConfig knob (BTB, predictor, caches)
 * scrubbed to the default. Capture depends only on workloads,
 * models, ablation, scale, the machine model, and the fuel limit —
 * exactly what survives the scrub — so two cells with equal keys
 * replay the same traces.
 */
std::string
traceGroupKey(const EvalRequest &request)
{
    EvalRequest scrubbed = request;
    SimConfig sim;
    sim.machine = request.sim.machine;
    sim.maxDynInstrs = request.sim.maxDynInstrs;
    scrubbed.sim = sim;
    return scrubbed.requestDigest();
}

/**
 * Shard index per cell: trace groups, numbered in first-appearance
 * (grid) order, are dealt round-robin to shards, so every cell
 * sharing a trace set lands on one worker and a single batched
 * replay pass prices all of them. Deterministic, so every forked
 * worker computes the identical assignment independently.
 */
std::vector<int>
shardAssignment(const std::vector<SweepCell> &cells, int stride)
{
    std::vector<int> shardOf(cells.size(), 0);
    std::unordered_map<std::string, int> groupOf;
    for (const SweepCell &cell : cells) {
        auto [it, inserted] = groupOf.emplace(
            traceGroupKey(cell.request),
            static_cast<int>(groupOf.size()));
        shardOf[cell.index] = it->second % stride;
    }
    return shardOf;
}

/** Evaluate one shard's cells in grid order. With @p batch the whole
 * shard is priced by one evaluateBatch call (each trace streamed
 * once for all configs that replay it); without, cells are evaluated
 * one request at a time. Both produce identical cell objects. */
std::pair<std::vector<JsonValue>, BenchTiming>
runShard(const std::vector<SweepCell> &cells, int shard, int stride,
         bool batch)
{
    const std::vector<int> shardOf = shardAssignment(cells, stride);
    std::vector<const SweepCell *> mine;
    for (const SweepCell &cell : cells) {
        if (shardOf[cell.index] == shard)
            mine.push_back(&cell);
    }
    SuiteEvaluator evaluator;
    std::vector<JsonValue> rendered;
    rendered.reserve(mine.size());
    if (batch) {
        std::vector<EvalRequest> requests;
        requests.reserve(mine.size());
        for (const SweepCell *cell : mine)
            requests.push_back(cell->request);
        std::vector<EvalResponse> responses =
            evaluator.evaluateBatch(requests);
        for (std::size_t i = 0; i < mine.size(); ++i)
            rendered.push_back(cellToJson(*mine[i], responses[i]));
    } else {
        for (const SweepCell *cell : mine) {
            rendered.push_back(
                cellToJson(*cell,
                           evaluator.evaluate(cell->request)));
        }
    }
    return {std::move(rendered), evaluator.timing()};
}

std::string
workerFilePath(const std::string &dir, int worker)
{
    return dir + "/worker_" + std::to_string(worker) + ".json";
}

/** Child-process body: evaluate the shard, write the result file. */
[[noreturn]] void
runWorkerChild(const std::vector<SweepCell> &cells, int worker,
               int workers, bool batch, const std::string &dir)
{
    try {
        FAULT_POINT("sweep.worker.start");
        auto [rendered, timing] =
            runShard(cells, worker, workers, batch);
        JsonValue doc = JsonValue::makeObject({
            {"worker", JsonValue::makeInt(worker)},
            {"timing", timingToJson(timing)},
            {"cells",
             JsonValue::makeArray(std::move(rendered))},
        });
        std::string payload = doc.dump() + "\n";
        // A torn publish leaves a truncated result file the parent
        // must reject at merge time and re-deal to a fresh worker.
        switch (faultpoints::poll("sweep.worker.publish")) {
          case faultpoints::FaultAction::ShortWrite:
            payload.resize(payload.size() / 2);
            break;
          case faultpoints::FaultAction::Throw:
            throw FaultInjectedError("sweep.worker.publish");
          default:
            break;
        }
        std::ofstream out(workerFilePath(dir, worker),
                          std::ios::binary | std::ios::trunc);
        out << payload;
        out.close();
        // _exit: never run the parent's atexit/static destructors
        // (gtest handlers, stream flushes) in the child.
        _exit(out ? 0 : 3);
    } catch (const std::exception &e) {
        std::cerr << "sweep worker " << worker
                  << " failed: " << e.what() << "\n";
        _exit(2);
    } catch (...) {
        std::cerr << "sweep worker " << worker
                  << " failed: unknown exception\n";
        _exit(2);
    }
}

// ---- Worker supervision (self-healing forked path) ----

/** Human-readable waitpid status: "exit N" or "signal N (Name)". */
std::string
describeStatus(int status)
{
    if (WIFEXITED(status))
        return "exit " + std::to_string(WEXITSTATUS(status));
    if (WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        const char *name = ::strsignal(sig);
        return "signal " + std::to_string(sig) + " (" +
               (name != nullptr ? name : "?") + ")";
    }
    return "status " + std::to_string(status);
}

/**
 * Parse and validate one worker result file: well-formed JSON with
 * worker/timing/cells members, claiming the right worker id, and
 * containing exactly the cells of its shard, each once. Any
 * violation — including the truncated file a killed or torn publish
 * leaves behind — is returned as a failure reason (and the shard is
 * retried); "" means @p doc is valid. Validating per worker file
 * rather than per merged array means every duplicate, foreign, or
 * omitted cell is attributed to the process that produced it.
 */
std::string
parseWorkerDoc(const std::string &path, int worker,
               const std::vector<std::size_t> &expected,
               JsonValue &doc)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "result file missing";
    std::ostringstream content;
    content << in.rdbuf();
    try {
        doc = JsonValue::parse(content.str());
    } catch (const std::exception &e) {
        return std::string(
                   "truncated or unparseable result file (") +
               e.what() + ")";
    }
    const JsonValue *who = doc.find("worker");
    const JsonValue *timing = doc.find("timing");
    const JsonValue *cellsJson = doc.find("cells");
    if (who == nullptr || timing == nullptr ||
        cellsJson == nullptr) {
        return "result file lacks worker/timing/cells members";
    }
    if (who->asInt() != worker) {
        return "result file claims worker " +
               std::to_string(who->asInt());
    }
    std::unordered_set<std::size_t> seen;
    for (const JsonValue &cell : cellsJson->items()) {
        const JsonValue *idx = cell.find("index");
        if (idx == nullptr)
            return "cell without an index";
        std::int64_t raw = idx->asInt();
        if (raw < 0)
            return "cell index out of range: " +
                   std::to_string(raw);
        std::size_t index = static_cast<std::size_t>(raw);
        if (std::find(expected.begin(), expected.end(), index) ==
            expected.end()) {
            return "cell " + std::to_string(index) +
                   " not owned by this shard";
        }
        if (!seen.insert(index).second)
            return "duplicate cell " + std::to_string(index);
    }
    if (seen.size() != expected.size()) {
        for (std::size_t index : expected) {
            if (seen.find(index) == seen.end())
                return "omitted cell " + std::to_string(index);
        }
    }
    return "";
}

/**
 * The record a cell degrades to when its shard exhausted every
 * attempt: same identity members as a healthy cell (index, axes,
 * digests) but "degraded": true and an "error" object carrying the
 * last failure's full attribution instead of "benchmarks".
 */
JsonValue
degradedCellJson(const SweepCell &cell, int worker,
                 const std::string &error)
{
    std::vector<std::pair<std::string, JsonValue>> axes;
    for (const auto &[name, value] : cell.axisValues)
        axes.emplace_back(name, value);
    return JsonValue::makeObject({
        {"index", JsonValue::makeInt(
                      static_cast<std::int64_t>(cell.index))},
        {"axes", JsonValue::makeObject(std::move(axes))},
        {"request_digest",
         JsonValue::makeString(cell.request.requestDigest())},
        {"config_digest",
         JsonValue::makeString(cell.request.sim.configDigest())},
        {"degraded", JsonValue::makeBool(true)},
        {"error", JsonValue::makeObject({
                      {"worker", JsonValue::makeInt(worker)},
                      {"message", JsonValue::makeString(error)},
                  })},
    });
}

} // namespace

const std::vector<std::string> &
SweepSpec::knownAxes()
{
    static const std::vector<std::string> axes = {
        "issue_width",      "branches_per_cycle",
        "mispredict_penalty", "btb_entries",
        "btb_assoc",        "predictor",
        "cache_size_bytes", "cache_line_bytes",
        "cache_assoc",      "cache_miss_penalty",
        "perfect_caches",
    };
    return axes;
}

SweepSpec
SweepSpec::fromJson(const JsonValue &json)
{
    SweepSpec spec;
    for (const auto &[key, value] : json.members()) {
        if (key == "workloads") {
            for (const JsonValue &item : value.items())
                spec.base.workloads.push_back(item.asString());
        } else if (key == "models") {
            for (const JsonValue &item : value.items())
                spec.base.models.push_back(
                    modelFromKey(item.asString()));
        } else if (key == "ablation") {
            spec.base.ablation = AblationFlags::fromJson(value);
        } else if (key == "scale") {
            std::int64_t raw = value.asInt();
            if (raw <= 0)
                throw FatalError("sweep scale must be positive");
            spec.base.scale = static_cast<int>(raw);
        } else if (key == "base") {
            spec.base.sim = SimConfig::fromJson(value);
        } else if (key == "axes") {
            for (const auto &[axis, values] : value.members()) {
                if (values.items().empty()) {
                    throw FatalError("sweep axis '" + axis +
                                     "' has no values");
                }
                // Validate name and value types now, on a scratch
                // config, so a bad spec fails before any work runs.
                for (const JsonValue &v : values.items()) {
                    SimConfig scratch;
                    applyAxis(scratch, axis, v);
                }
                spec.axes.push_back(SweepAxis{axis, values.items()});
            }
        } else {
            throw FatalError("unknown sweep spec key '" + key +
                             "'");
        }
    }
    return spec;
}

std::vector<SweepCell>
SweepSpec::expandGrid() const
{
    std::size_t total = 1;
    for (const SweepAxis &axis : axes)
        total *= axis.values.size();
    std::vector<SweepCell> cells;
    cells.reserve(total);
    for (std::size_t index = 0; index < total; ++index) {
        SweepCell cell;
        cell.index = index;
        cell.request = base;
        // Row-major: the last listed axis varies fastest.
        std::size_t rest = index;
        std::vector<std::size_t> coords(axes.size(), 0);
        for (std::size_t a = axes.size(); a-- > 0;) {
            coords[a] = rest % axes[a].values.size();
            rest /= axes[a].values.size();
        }
        for (std::size_t a = 0; a < axes.size(); ++a) {
            const JsonValue &value = axes[a].values[coords[a]];
            applyAxis(cell.request.sim, axes[a].name, value);
            cell.axisValues.emplace_back(axes[a].name, value);
        }
        cells.push_back(std::move(cell));
    }
    return cells;
}

SweepOutcome
runSweep(const SweepSpec &spec, int workers,
         const std::string &outPath, bool batch,
         const SweepHealPolicy &heal)
{
    // Arm PREDILP_FAULTS here, before any fork: the fire-state page
    // is MAP_SHARED, so "once" spans the whole worker tree and a
    // retried shard runs clean after the fault fired.
    faultpoints::armFromEnv();
    const auto started = std::chrono::steady_clock::now();
    const std::vector<SweepCell> cells = spec.expandGrid();

    std::vector<JsonValue> rendered;
    BenchTiming timing;
    int workerRetries = 0;
    std::size_t degradedCells = 0;
    int effectiveWorkers = std::max(1, workers);
    if (effectiveWorkers > 1 &&
        cells.size() < static_cast<std::size_t>(effectiveWorkers)) {
        effectiveWorkers =
            std::max(1, static_cast<int>(cells.size()));
    }

    if (effectiveWorkers == 1) {
        auto [cellsJson, shardTiming] =
            runShard(cells, 0, 1, batch);
        rendered = std::move(cellsJson);
        timing = shardTiming;
    } else {
        // Shard across forked workers sharing the flock-safe
        // artifact store (each child opens it independently via the
        // environment, like any other predilp process would). The
        // parent supervises: watchdog kills, death detection, and
        // bounded-backoff retries on fresh workers. Retried shards
        // reproduce their cells byte-identically (deterministic
        // evaluation + atomic store publish), so a sweep that loses
        // workers converges to the clean run's report.
        SweepHealPolicy policy = heal;
        policy.maxAttempts = std::max(1, policy.maxAttempts);
        if (policy.watchdogSec <= 0) {
            policy.watchdogSec =
                EnvConfig::fromEnvironment().sweepWatchdogSec;
        }

        // Worker scratch goes under TMPDIR (via EnvConfig), not a
        // hardcoded /tmp — sandboxed CI runners and multi-user hosts
        // point TMPDIR at a private writable directory.
        const std::string tmplStr =
            EnvConfig::fromEnvironment().tmpDir +
            "/predilp-sweep-XXXXXX";
        std::vector<char> tmpl(tmplStr.begin(), tmplStr.end());
        tmpl.push_back('\0');
        const char *dirc = ::mkdtemp(tmpl.data());
        if (dirc == nullptr) {
            throw FatalError(std::string("mkdtemp failed for ") +
                             tmplStr + ": " + std::strerror(errno));
        }
        const std::string dir = dirc;

        const std::vector<int> shardOf =
            shardAssignment(cells, effectiveWorkers);
        std::vector<std::vector<std::size_t>> owned(
            static_cast<std::size_t>(effectiveWorkers));
        for (const SweepCell &cell : cells) {
            owned[static_cast<std::size_t>(shardOf[cell.index])]
                .push_back(cell.index);
        }

        using Clock = std::chrono::steady_clock;
        struct ShardState
        {
            pid_t pid = -1;
            int attempts = 0;
            bool running = false;
            bool done = false; ///< valid result file merged.
            bool dead = false; ///< attempt budget exhausted.
            Clock::time_point deadline{};  ///< watchdog (running).
            Clock::time_point nextStart{}; ///< backoff (waiting).
            JsonValue doc;
            std::string lastError;
        };
        std::vector<ShardState> shards(
            static_cast<std::size_t>(effectiveWorkers));

        auto spawn = [&](int w) {
            ShardState &s = shards[static_cast<std::size_t>(w)];
            std::error_code ec;
            fs::remove(workerFilePath(dir, w), ec); // stale attempt
            pid_t pid = ::fork();
            if (pid < 0) {
                throw FatalError(std::string("fork failed: ") +
                                 std::strerror(errno));
            }
            if (pid == 0) {
                runWorkerChild(cells, w, effectiveWorkers, batch,
                               dir);
            }
            s.pid = pid;
            s.attempts += 1;
            s.running = true;
            if (policy.watchdogSec > 0) {
                s.deadline =
                    Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            policy.watchdogSec));
            }
        };

        auto fail = [&](int w, const std::string &why) {
            ShardState &s = shards[static_cast<std::size_t>(w)];
            s.running = false;
            s.lastError = "worker " + std::to_string(w) + " (pid " +
                          std::to_string(s.pid) + ", attempt " +
                          std::to_string(s.attempts) + "/" +
                          std::to_string(policy.maxAttempts) +
                          ", shard file " + workerFilePath(dir, w) +
                          "): " + why;
            if (s.attempts >= policy.maxAttempts) {
                s.dead = true;
                warn("sweep: giving up on " + s.lastError);
                return;
            }
            const double backoff =
                policy.backoffSec *
                static_cast<double>(1 << (s.attempts - 1));
            s.nextStart =
                Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(backoff));
            workerRetries += 1;
            warn("sweep: retrying " + s.lastError);
        };

        for (int w = 0; w < effectiveWorkers; ++w)
            spawn(w);
        while (true) {
            bool allSettled = true;
            const auto now = Clock::now();
            for (int w = 0; w < effectiveWorkers; ++w) {
                ShardState &s =
                    shards[static_cast<std::size_t>(w)];
                if (s.done || s.dead)
                    continue;
                if (s.running) {
                    int status = 0;
                    pid_t r = ::waitpid(s.pid, &status, WNOHANG);
                    if (r == s.pid) {
                        if (WIFEXITED(status) &&
                            WEXITSTATUS(status) == 0) {
                            std::string err = parseWorkerDoc(
                                workerFilePath(dir, w), w,
                                owned[static_cast<std::size_t>(w)],
                                s.doc);
                            if (err.empty())
                                s.done = true;
                            else
                                fail(w, err);
                            s.running = false;
                        } else {
                            fail(w, describeStatus(status));
                        }
                    } else if (r < 0) {
                        fail(w, std::string("waitpid failed: ") +
                                    std::strerror(errno));
                    } else if (policy.watchdogSec > 0 &&
                               now >= s.deadline) {
                        ::kill(s.pid, SIGKILL);
                        ::waitpid(s.pid, &status, 0);
                        fail(w, "watchdog timeout after " +
                                    std::to_string(
                                        policy.watchdogSec) +
                                    "s (SIGKILL)");
                    }
                } else if (now >= s.nextStart) {
                    spawn(w); // backoff elapsed: fresh worker.
                }
                if (!s.done && !s.dead)
                    allSettled = false;
            }
            if (allSettled)
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }

        if (!policy.degradeCells) {
            std::string failures;
            for (const ShardState &s : shards) {
                if (s.dead)
                    failures += "\n  " + s.lastError;
            }
            if (!failures.empty()) {
                throw FatalError(
                    "sweep workers failed permanently:" +
                    failures);
            }
        }

        // Merge: every done shard's validated cells (per-file
        // validation already guaranteed exactly-once ownership);
        // every dead shard's cells degrade to attributed records.
        std::vector<const JsonValue *> byIndex(cells.size(),
                                               nullptr);
        for (const ShardState &s : shards) {
            if (!s.done)
                continue;
            mergeTiming(timing, timingFromJson(s.doc.at("timing")));
            for (const JsonValue &cell : s.doc.at("cells").items())
                byIndex[static_cast<std::size_t>(
                    cell.at("index").asInt())] = &cell;
        }
        rendered.reserve(cells.size());
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (byIndex[i] != nullptr) {
                rendered.push_back(*byIndex[i]);
                continue;
            }
            const int w = shardOf[i];
            degradedCells += 1;
            rendered.push_back(degradedCellJson(
                cells[i], w,
                shards[static_cast<std::size_t>(w)].lastError));
        }
        std::error_code ec;
        fs::remove_all(dir, ec); // best-effort cleanup.
    }

    SweepOutcome outcome;
    outcome.cells = cells.size();
    outcome.workers = effectiveWorkers;
    outcome.workerRetries = workerRetries;
    outcome.degradedCells = degradedCells;
    outcome.timing = timing;
    outcome.cellsJson =
        JsonValue::makeArray(rendered).dump();

    if (!outPath.empty()) {
        const double wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - started)
                .count();
        std::ofstream os(outPath,
                         std::ios::binary | std::ios::trunc);
        if (!os) {
            throw FatalError("cannot write sweep report " +
                             outPath);
        }
        os << "{\n  \"bench\": \"sweep\",\n"
           << "  \"workers\": " << effectiveWorkers << ",\n"
           << "  \"cell_count\": " << cells.size() << ",\n"
           // Always present (0 on clean runs), so report consumers
           // can assert on them without probing for the keys.
           << "  \"worker_retries\": " << workerRetries << ",\n"
           << "  \"degraded_cells\": " << degradedCells << ",\n"
           << "  \"timing\": "
           << timingSnapshot(timing, wallSeconds,
                             effectiveWorkers)
                  .toJson(2)
           << ",\n"
           << "  \"crossover\": "
           << crossoverSummary(spec, rendered).dump() << ",\n"
           << "  \"cells\": " << outcome.cellsJson << "\n}\n";
        outcome.path = outPath;
    }
    return outcome;
}

} // namespace predilp
