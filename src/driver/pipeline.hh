/**
 * @file
 * End-to-end compilation pipelines for the three processor models of
 * the paper (§4.1): Superblock (baseline), Conditional Move (partial
 * predication), and Full Predication. Shared by the benchmark
 * harness, the examples, and the integration tests.
 */

#ifndef PREDILP_DRIVER_PIPELINE_HH
#define PREDILP_DRIVER_PIPELINE_HH

#include <memory>
#include <string>

#include "hyperblock/hyperblock.hh"
#include "partial/partial.hh"
#include "sim/timing.hh"
#include "superblock/superblock.hh"

namespace predilp
{

/** The three compilation/architecture models compared in the paper. */
enum class Model
{
    Superblock,   ///< no predication; superblock + speculation.
    CondMove,     ///< partial predication via cmov/cmov_com.
    FullPred,     ///< full predicate register file + defines.
};

/** @return "Superblock" / "Cond. Move" / "Full Pred.". */
std::string modelName(Model model);

/** Everything configurable about one compilation. */
struct CompileOptions
{
    Model model = Model::FullPred;
    MachineConfig machine;
    SuperblockOptions superblock;
    HyperblockOptions hyperblock;
    BranchCombineOptions branchCombine;
    PartialOptions partial;
    bool enablePromotion = true;
    bool enableBranchCombining = true;
    bool enableHeightReduction = true;
    bool enableUnrolling = true;
    /** Allow cross-branch speculation in the scheduler. */
    bool schedulerSpeculation = true;
    /** Input used for the profiling run. */
    std::string profileInput;
    /** Emulator fuel for profiling runs. */
    std::uint64_t maxProfileInstrs = 2'000'000'000ull;
};

/**
 * Compile ILC source for one model: frontend, classical
 * optimization, profiling, region formation for the chosen model,
 * re-optimization, layout, and scheduling. The result verifies
 * cleanly and is ready for simulation.
 */
std::unique_ptr<Program> compileForModel(const std::string &source,
                                         const CompileOptions &opts);

/** Compile + simulate in one step. */
SimResult runModel(const std::string &source,
                   const std::string &input,
                   const CompileOptions &compileOpts,
                   const SimConfig &simConfig);

/**
 * Reference run: frontend + classical optimization only, emulated
 * functionally. Used as the correctness oracle for every model.
 */
RunResult runReference(const std::string &source,
                       const std::string &input,
                       std::uint64_t maxDynInstrs =
                           2'000'000'000ull);

} // namespace predilp

#endif // PREDILP_DRIVER_PIPELINE_HH
