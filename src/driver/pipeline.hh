/**
 * @file
 * End-to-end compilation pipelines for the three processor models of
 * the paper (§4.1): Superblock (baseline), Conditional Move (partial
 * predication), and Full Predication. Shared by the benchmark
 * harness, the examples, and the integration tests.
 *
 * Each model's pipeline is a declarative pass list (see
 * buildPassPipeline) run by a PassManager, so every stage reports
 * wall time, change counts, and IR-size deltas through the shared
 * StatsRegistry observability seam.
 */

#ifndef PREDILP_DRIVER_PIPELINE_HH
#define PREDILP_DRIVER_PIPELINE_HH

#include <memory>
#include <string>

#include "analysis/profile.hh"
#include "hyperblock/hyperblock.hh"
#include "opt/pass.hh"
#include "partial/partial.hh"
#include "sim/timing.hh"
#include "superblock/superblock.hh"
#include "support/json.hh"

namespace predilp
{

/** The three compilation/architecture models compared in the paper. */
enum class Model
{
    Superblock,   ///< no predication; superblock + speculation.
    CondMove,     ///< partial predication via cmov/cmov_com.
    FullPred,     ///< full predicate register file + defines.
};

/** @return "Superblock" / "Cond. Move" / "Full Pred.". */
std::string modelName(Model model);

/**
 * Stable machine-readable identifier: "superblock" / "cond_move" /
 * "full_pred". Used as the JSON key in BENCH_*.json, EvalRequest
 * serialization, and sweep cell labels.
 */
const char *modelKey(Model model);

/** Inverse of modelKey(); throws FatalError on an unknown key. */
Model modelFromKey(const std::string &key);

/**
 * On/off switches for the optional predication optimizations — the
 * ablation axes of the paper's evaluation. One struct shared by
 * CompileOptions, SuiteConfig, and the evaluator's cache-key
 * canonicalization, so a flag added here is automatically part of
 * every compile, every sweep, and every trace-cache key.
 */
struct AblationFlags
{
    bool promotion = true;       ///< predicate promotion (§3.2).
    bool branchCombining = true; ///< exit-branch combining (§4.2).
    bool heightReduction = true; ///< control height reduction (§2.1).
    bool unrolling = true;       ///< post-formation loop unrolling.
    bool orTree = true;          ///< OR-tree rebalancing (partial).
    bool useSelect = false;      ///< select formation (partial).

    /**
     * Canonical form for @p model: flags the model's pipeline never
     * reads are pinned to their defaults, so e.g. a no-or-tree sweep
     * shares the Superblock and Full Predication traces of the
     * default configuration.
     */
    AblationFlags canonicalFor(Model model) const;

    /** Stable cache-key fragment, one character per flag. */
    std::string key() const;

    /** Canonical JSON object (all six flags, fixed order). */
    JsonValue toJson() const;

    /**
     * Parse a flags object. Absent keys keep their defaults;
     * unknown keys throw FatalError.
     */
    static AblationFlags fromJson(const JsonValue &json);

    bool operator==(const AblationFlags &other) const;
    bool operator!=(const AblationFlags &other) const
    {
        return !(*this == other);
    }
};

/** Everything configurable about one compilation. */
struct CompileOptions
{
    Model model = Model::FullPred;
    MachineConfig machine;
    SuperblockOptions superblock;
    HyperblockOptions hyperblock;
    BranchCombineOptions branchCombine;
    /**
     * Partial-lowering knobs. orTree/useSelect are driven by
     * `ablation` (the values here are overwritten when the pipeline
     * is built); only nonExcepting is read from this field.
     */
    PartialOptions partial;
    /** Optional-optimization switches (one shared struct). */
    AblationFlags ablation;
    /** Allow cross-branch speculation in the scheduler. */
    bool schedulerSpeculation = true;
    /**
     * Run the IR verifier after every pass; a violation throws
     * VerifyError naming the offending pass. Used by the fuzz
     * oracle and debugging runs; off for benchmark compiles.
     */
    bool verifyEachPass = false;
    /** Input used for the profiling run. */
    std::string profileInput;
    /** Emulator fuel for profiling runs. */
    std::uint64_t maxProfileInstrs = 2'000'000'000ull;
};

/**
 * The declarative pass list for @p opts.model: classical cleanup to
 * fixpoint, profiling, model-specific region formation and lowering,
 * post-formation re-optimization, layout, and scheduling. Running it
 * through PassManager::run records the uniform per-pass
 * instrumentation into the PassContext's StatsRegistry.
 *
 * Equal to buildPrefixPipeline() followed by
 * buildModelPipeline(opts).
 */
PassManager buildPassPipeline(const CompileOptions &opts);

/**
 * The model-independent front half shared by every pipeline:
 * inlining, classical cleanup to fixpoint, LICM, and the primary
 * profiling run. Nothing in it reads the model, machine, or ablation
 * flags, which is what makes the front-end snapshot cache sound: the
 * post-prefix Program (plus the profile it measured) is one
 * canonical artifact per (source, profile input).
 */
PassManager buildPrefixPipeline();

/**
 * The model-specific back half: region formation, predication /
 * lowering, post-formation re-optimization, unrolling, layout, and
 * scheduling for @p opts.
 */
PassManager buildModelPipeline(const CompileOptions &opts);

/**
 * The cached front-end artifact: the program as the prefix pipeline
 * left it, plus the primary execution profile measured on it.
 * Immutable once built — model compiles deep-clone the program
 * (Program::clone) and copy the profile, so any number of
 * compileFromSnapshot calls (including concurrent ones) can resume
 * from one snapshot.
 */
struct FrontendSnapshot
{
    std::unique_ptr<Program> prog;
    ProgramProfile profile;
};

/**
 * Run the frontend and the prefix pipeline once, producing the
 * snapshot every model of this (source, input) pair can resume from.
 * When @p stats is non-null, the prefix passes' counters/timers are
 * recorded into it.
 */
FrontendSnapshot compilePrefix(const std::string &source,
                               const std::string &profileInput,
                               std::uint64_t maxProfileInstrs =
                                   2'000'000'000ull,
                               StatsRegistry *stats = nullptr,
                               bool verifyEachPass = false);

/**
 * Finish a compilation from @p snapshot: clone the prefix program,
 * seed the pass context with a copy of the prefix profile, and run
 * only buildModelPipeline(opts). Produces a Program bit-identical
 * (printProgram) to compileForModel on the same source/options —
 * the snapshot path merely skips recomputing the shared prefix.
 */
std::unique_ptr<Program>
compileFromSnapshot(const FrontendSnapshot &snapshot,
                    const CompileOptions &opts,
                    StatsRegistry *stats = nullptr);

/**
 * Compile ILC source for one model: frontend, then the
 * buildPassPipeline pass list. The result verifies cleanly and is
 * ready for simulation. When @p stats is non-null, per-pass timing
 * and change counters (opt.*, superblock.*, hyperblock.*, partial.*,
 * sched.*, driver.profile.*) are recorded into it.
 */
std::unique_ptr<Program> compileForModel(const std::string &source,
                                         const CompileOptions &opts,
                                         StatsRegistry *stats =
                                             nullptr);

/** Compile + simulate in one step. */
SimResult runModel(const std::string &source,
                   const std::string &input,
                   const CompileOptions &compileOpts,
                   const SimConfig &simConfig);

/**
 * Reference run: frontend + classical optimization only, emulated
 * functionally. Used as the correctness oracle for every model.
 */
RunResult runReference(const std::string &source,
                       const std::string &input,
                       std::uint64_t maxDynInstrs =
                           2'000'000'000ull);

} // namespace predilp

#endif // PREDILP_DRIVER_PIPELINE_HH
