#include "driver/certified.hh"

#include <sstream>

#include "sim/timing.hh"
#include "store/sha256.hh"

namespace predilp
{

JsonValue
CellProvenance::toJson() const
{
    return JsonValue::makeObject({
        {"workload", JsonValue::makeString(workload)},
        {"model", JsonValue::makeString(model)},
        {"scale", JsonValue::makeInt(scale)},
        {"ablation", JsonValue::makeString(ablation)},
        {"fuel",
         JsonValue::makeInt(static_cast<std::int64_t>(fuel))},
        {"machine", JsonValue::makeString(machine)},
        {"source_sha256", JsonValue::makeString(sourceSha256)},
        {"pipeline_digest", JsonValue::makeString(pipelineDigest)},
        {"config_digest", JsonValue::makeString(configDigest)},
        {"trace_digest", JsonValue::makeString(traceDigest)},
    });
}

std::string
CellProvenance::identityKey() const
{
    std::ostringstream os;
    os << workload << '|' << model << "|s" << scale << "|a"
       << ablation << "|f" << fuel << "|m" << machine;
    return os.str();
}

std::string
machineIdentity(const MachineConfig &m)
{
    std::ostringstream os;
    os << m.issueWidth << ',' << m.branchesPerCycle << ','
       << m.mispredictPenalty << ',' << m.latIntAlu << ','
       << m.latIntMul << ',' << m.latIntDiv << ',' << m.latFpAlu
       << ',' << m.latFpDiv << ',' << m.latLoad << ',' << m.latStore
       << ',' << m.latBranch << ',' << m.latPredDefine;
    return os.str();
}

std::string
passPipelineDigest(Model model, const AblationFlags &ablation)
{
    CompileOptions opts;
    opts.model = model;
    opts.ablation = ablation.canonicalFor(model);
    std::ostringstream text;
    text << "predilp-pipeline-v1\n" << modelKey(model) << '|'
         << opts.ablation.key() << '\n';
    for (const std::string &name :
         buildPassPipeline(opts).passNames())
        text << name << '\n';
    return "v1:" + sha256Hex(text.str()).substr(0, 32);
}

std::string
certifiedResultKey(const CellProvenance &prov)
{
    return sha256Hex(std::string(certSchemaTag) + "\n" +
                     prov.toJson().dump());
}

JsonValue
certifiedFigures(const SimResult &sim)
{
    // std::map ordering makes the member order — and therefore the
    // record bytes — independent of insertion order.
    std::map<std::string, std::uint64_t> figures(
        sim.stats.counters());
    figures["cycles"] = sim.cycles;
    figures["dyn_instrs"] = sim.dynInstrs;
    figures["nullified"] = sim.nullified;
    figures["branches"] = sim.branches;
    figures["cond_branches"] = sim.condBranches;
    figures["mispredicts"] = sim.mispredicts;
    figures["loads"] = sim.loads;
    figures["stores"] = sim.stores;
    figures["icache_misses"] = sim.icacheMisses;
    figures["dcache_misses"] = sim.dcacheMisses;
    std::vector<std::pair<std::string, JsonValue>> members;
    members.reserve(figures.size());
    for (const auto &[name, value] : figures)
        members.emplace_back(
            name,
            JsonValue::makeInt(static_cast<std::int64_t>(value)));
    return JsonValue::makeObject(std::move(members));
}

JsonValue
certifiedRecord(const CellProvenance &prov, const SimResult &sim)
{
    return JsonValue::makeObject({
        {"schema", JsonValue::makeString(certSchemaTag)},
        {"provenance", prov.toJson()},
        {"figures", certifiedFigures(sim)},
    });
}

} // namespace predilp
