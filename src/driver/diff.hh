/**
 * @file
 * Cross-run drift classification over result sets (DESIGN.md §6k).
 *
 * A result set is either a directory/file of BENCH_*.json documents
 * (bench_io/sweep output) or a store directory of certified records
 * (driver/certified.hh). diffResultSets joins two sets cell by cell
 * on provenance identity and classifies every pair:
 *
 *   identical          same evidence digests, same figures.
 *   explained          a provenance digest differs — the source,
 *                      pass pipeline, SimConfig, or trace changed,
 *                      and the differing digest is named as the
 *                      evidence for any figure delta.
 *   unexplained drift  every digest equal but a figure differs:
 *                      the same computation produced a different
 *                      number. This is the failure the CI drift
 *                      gate exists to catch.
 *   added / removed    cell present in only one set.
 *
 * Figures compare by their exact lexical JSON rendering —
 * determinism is the repo-wide contract (bench_json.sh already
 * requires warm == cold byte-identically), so any lexical change is
 * a real change.
 *
 * The predilp_diff CLI (tools/diff_main.cc) and the CI drift gate
 * are thin wrappers over these entry points.
 */

#ifndef PREDILP_DRIVER_DIFF_HH
#define PREDILP_DRIVER_DIFF_HH

#include <cstddef>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "support/json.hh"

namespace predilp
{

/** One comparable cell extracted from a result set. */
struct DiffCell
{
    /** Join key: which cell this is (never why its figures are what
     * they are). BENCH sets use bench/benchmark/model [+ sweep
     * axes]; certified records use CellProvenance::identityKey(). */
    std::string identity;
    /** Evidence digests (source_sha256, pipeline_digest,
     * config_digest, trace_digest) when the set carries provenance;
     * empty for legacy documents without it. */
    std::map<std::string, std::string> evidence;
    /** Figure leaves, flattened to dotted keys, values in their
     * exact lexical JSON rendering. */
    std::map<std::string, std::string> figures;
    /** Where the cell came from (file path), for evidence output. */
    std::string origin;
};

/** A loaded, comparable result set. */
struct ResultSet
{
    std::string label;
    std::vector<DiffCell> cells;
    /** Sealed records that failed validation and were skipped. */
    std::size_t invalidRecords = 0;
};

/**
 * Load a result set from @p path:
 *  - a store directory (or its results/ subdirectory): every
 *    *.cert.json certified record, seal-validated;
 *  - any other directory: every BENCH_*.json inside it;
 *  - a file: one BENCH JSON document.
 * Throws FatalError on an unreadable path or malformed BENCH JSON.
 */
ResultSet loadResultSet(const std::string &path);

enum class DiffKind
{
    Identical,
    Explained,
    Unexplained,
    Added,
    Removed,
};

const char *diffKindName(DiffKind kind);

/** One before/after value delta (a digest or a figure). */
struct DiffDelta
{
    std::string name;
    std::string before;
    std::string after;
};

/** Classification of one joined cell (identical cells are counted,
 * not materialized). */
struct DiffEntry
{
    DiffKind kind = DiffKind::Identical;
    std::string identity;
    /** Evidence digests that differ (Explained entries name the
     * cause here). */
    std::vector<DiffDelta> digests;
    /** Figure leaves that differ. */
    std::vector<DiffDelta> figures;
};

struct DiffReport
{
    std::vector<DiffEntry> entries; ///< non-identical cells only.
    std::size_t identical = 0;
    std::size_t explained = 0;
    std::size_t unexplained = 0;
    std::size_t added = 0;
    std::size_t removed = 0;

    bool hasUnexplainedDrift() const { return unexplained > 0; }
};

/** Join @p before and @p after by cell identity and classify every
 * pair; deterministic entry order (sorted by identity). */
DiffReport diffResultSets(const ResultSet &before,
                          const ResultSet &after);

/** Human-readable report: per-cell evidence lines, then a summary
 * tally. @p verbose lifts the per-entry figure-delta cap. */
void printDiffReport(std::ostream &os, const DiffReport &report,
                     bool verbose = false);

/** The whole report as one JSON document (for tooling). */
JsonValue diffReportToJson(const DiffReport &report);

/**
 * Verify the provenance contract across a whole store directory:
 * every objects/ artifact parses cleanly and carries a sealed
 * sidecar naming its exact payload checksum, and every results/
 * certified record passes seal validation. Orphan sidecars (artifact
 * gone) are warned about but are not violations — they are never
 * served and GC sweeps them. @return the number of violations,
 * printing one evidence line each to @p os.
 */
int verifyStoreProvenance(std::ostream &os,
                          const std::string &storeDir);

} // namespace predilp

#endif // PREDILP_DRIVER_DIFF_HH
