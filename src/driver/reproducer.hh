/**
 * @file
 * Self-contained failure reproducers. When a harness (the fuzz
 * oracle, the fault-isolated suite evaluator) survives a failing
 * cell, it writes the complete recipe — ILC source, input bytes,
 * model, ablation flags, and the failure classification — to a
 * single file a developer can replay by hand. The file is valid ILC:
 * all metadata lives in a `//` comment header above the source.
 */

#ifndef PREDILP_DRIVER_REPRODUCER_HH
#define PREDILP_DRIVER_REPRODUCER_HH

#include <cstdint>
#include <string>

#include "driver/pipeline.hh"

namespace predilp
{

/** Everything needed to re-run one failing compile/execute cell. */
struct ReproducerSpec
{
    /** Short slug naming the failing cell (workload or fuzz case). */
    std::string title;
    /** Generator seed, meaningful only when hasSeed is set. */
    std::uint64_t seed = 0;
    bool hasSeed = false;
    /** Model the failure occurred under (modelName form). */
    std::string model;
    /** Ablation flags in effect. */
    AblationFlags ablation;
    /** Suite scale multiplier (1 for fuzz cases). */
    int scale = 1;
    /** Taxonomy label from classifyException(). */
    std::string kind;
    /** The failure's what() message. */
    std::string message;
    /** Input bytes fed to the program (may contain NUL). */
    std::string input;
    /** The ILC source of the failing program. */
    std::string source;
};

/** Render @p spec as the reproducer file text (see file comment). */
std::string renderReproducer(const ReproducerSpec &spec);

/**
 * Write @p spec under @p dir (created if absent) as
 * `<title>-<kind>.ilc`, slugged to filesystem-safe characters.
 * @return the path written, or "" if the filesystem refused — a
 * reproducer must never turn a survivable failure into a fatal one.
 */
std::string writeReproducer(const std::string &dir,
                            const ReproducerSpec &spec);

} // namespace predilp

#endif // PREDILP_DRIVER_REPRODUCER_HH
