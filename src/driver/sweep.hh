/**
 * @file
 * Sharded scenario-sweep grid driver (ROADMAP item 3). A declarative
 * SweepSpec — a base EvalRequest plus ordered value lists for the
 * paper's hardware axes (issue width, BTB entries/associativity/
 * predictor, cache size/line/associativity/penalty, perfect-vs-real
 * caches) — expands into the full cross product of SweepCells, each
 * a complete, serializable EvalRequest.
 *
 * runSweep() executes the grid either sequentially (one in-process
 * SuiteEvaluator) or sharded across N forked worker processes.
 * Sharding is trace-affine: cells are grouped by which captured
 * traces they replay (the request minus its replay-only BTB/
 * predictor/cache knobs) and the groups are dealt round-robin to
 * workers, so no two workers ever capture or replay the same trace.
 * Each worker prices its whole shard with one
 * SuiteEvaluator::evaluateBatch call — every trace is streamed once
 * for all of the shard's configs (pass batch=false to evaluate cell
 * by cell instead; the output is identical). Every worker opens the
 * same flock-safe ArtifactStore (via PREDILP_STORE), so captured
 * traces are shared across the fleet and a warm re-run of the same
 * grid performs zero compiles and zero captures. Workers report
 * per-cell JSON plus their BenchTiming through temp files; the
 * parent validates completeness (no duplicate, no missing cells),
 * merges timing additively, and emits one consolidated
 * BENCH_sweep.json with the cells in grid order plus a per-axis
 * crossover summary (where full predication's mean speedup overtakes
 * the partial-predication Cond. Move model).
 *
 * Determinism: the merged cells array is byte-identical to the
 * sequential run's — both paths build cell objects with the same
 * code and route them through JsonValue's canonical dump, and
 * StatsSnapshot's number formatting survives the worker-file
 * round trip losslessly.
 *
 * Self-healing (SweepHealPolicy): the forked path supervises its
 * workers instead of trusting them. A per-shard watchdog SIGKILLs a
 * worker that exceeds its deadline; death (signal, nonzero exit, or
 * a truncated/short/unparseable result file) is detected and
 * attributed (pid, exit status, shard file), and the shard is
 * re-dealt to a fresh worker with bounded exponential backoff, up to
 * maxAttempts total tries. Because cell evaluation is deterministic
 * and the artifact store publishes via temp+rename under a lock, a
 * retried shard reproduces its cells byte-identically — so a sweep
 * that loses workers to crashes converges to the same report as a
 * clean run. Shards that exhaust their attempts become per-cell
 * degraded records ({"degraded": true, "error": {...}} instead of
 * "benchmarks") when degradeCells is set, or throw FatalError when
 * it is not.
 */

#ifndef PREDILP_DRIVER_SWEEP_HH
#define PREDILP_DRIVER_SWEEP_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "driver/eval_request.hh"
#include "driver/evaluator.hh"
#include "support/json.hh"

namespace predilp
{

/** One ordered sweep axis: name plus the values to sweep. */
struct SweepAxis
{
    std::string name;
    std::vector<JsonValue> values;
};

/** One expanded grid cell. */
struct SweepCell
{
    /** Row-major position; the first listed axis varies slowest. */
    std::size_t index = 0;
    /** The fully resolved request (base + this cell's axis values). */
    EvalRequest request;
    /** This cell's (axis name, value) coordinates, in axis order. */
    std::vector<std::pair<std::string, JsonValue>> axisValues;
};

/** A declarative sweep grid; see file comment. */
struct SweepSpec
{
    /**
     * The request template: workloads, models, ablation, scale, and
     * the SimConfig every axis modifies (spec key "base").
     */
    EvalRequest base;

    /**
     * Axes in declaration order (order is semantic: the first listed
     * axis varies slowest in the expanded grid).
     */
    std::vector<SweepAxis> axes;

    /**
     * Parse a grid spec. Top-level keys: "workloads", "models",
     * "ablation", "scale", "base" (a SimConfig object), "axes" (an
     * object mapping axis name -> non-empty value array). Unknown
     * top-level keys and unknown axis names throw FatalError.
     */
    static SweepSpec fromJson(const JsonValue &json);

    /** Known axis names (for diagnostics and validation). */
    static const std::vector<std::string> &knownAxes();

    /** Cross product of all axes, row-major; no axes = one cell. */
    std::vector<SweepCell> expandGrid() const;
};

/** How the forked sweep path supervises and heals its workers. */
struct SweepHealPolicy
{
    /**
     * Total tries per shard (first run + retries). 1 disables
     * retry: the first failure is final.
     */
    int maxAttempts = 3;
    /**
     * Kill a worker that runs longer than this many seconds and
     * retry its shard. <= 0 reads PREDILP_SWEEP_WATCHDOG_SEC (and
     * disables the watchdog when that is unset too).
     */
    double watchdogSec = 0;
    /**
     * When a shard exhausts maxAttempts: true renders its cells as
     * degraded records and finishes the sweep; false throws
     * FatalError with the last failure's attribution.
     */
    bool degradeCells = true;
    /** First retry delay; doubles per subsequent attempt. */
    double backoffSec = 0.1;
};

/** What one sweep run produced. */
struct SweepOutcome
{
    std::size_t cells = 0;
    int workers = 1;
    /** Worker re-forks performed by the healing supervisor. */
    int workerRetries = 0;
    /** Cells rendered as degraded records (shards that never
     * produced a valid result file within their attempt budget). */
    std::size_t degradedCells = 0;
    /** Timing merged additively across all workers (or the one
     * sequential evaluator). */
    BenchTiming timing;
    /**
     * The dumped "cells" array — the determinism surface: equal for
     * sequential and any worker count on the same grid and tree.
     */
    std::string cellsJson;
    /** Path of the consolidated report written ("" = not written). */
    std::string path;
};

/**
 * Execute @p spec with @p workers processes (<= 1 = sequential,
 * in-process) and write the consolidated report to @p outPath
 * ("" skips the file). @p batch prices each shard with one
 * evaluateBatch call (one streaming pass per trace for all its
 * configs) instead of cell-by-cell evaluate; both modes produce a
 * byte-identical cells array. Worker failures are retried per
 * @p heal; a duplicate, missing, or out-of-range cell in a worker's
 * result file counts as that worker's failure and is attributed to
 * it (pid, exit status, shard file). Arms PREDILP_FAULTS (once per
 * process) before forking, so armed fault state is shared with every
 * worker.
 */
SweepOutcome runSweep(const SweepSpec &spec, int workers,
                      const std::string &outPath,
                      bool batch = true,
                      const SweepHealPolicy &heal = {});

} // namespace predilp

#endif // PREDILP_DRIVER_SWEEP_HH
