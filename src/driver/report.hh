/**
 * @file
 * Suite evaluation and table rendering for the paper's figures and
 * tables: run every workload under every processor model, compute
 * speedups against the 1-issue baseline exactly as §4.1 defines
 * them, and print rows in the paper's format.
 */

#ifndef PREDILP_DRIVER_REPORT_HH
#define PREDILP_DRIVER_REPORT_HH

#include <map>
#include <ostream>
#include <vector>

#include "driver/certified.hh"
#include "driver/pipeline.hh"
#include "workloads/workloads.hh"

namespace predilp
{

/**
 * Structured record of one failed evaluation cell, produced when the
 * evaluator runs with fault isolation on: the failing cell degrades
 * to this record (with a self-contained reproducer file when a
 * reproducer directory is configured) while every other cell
 * completes normally.
 */
struct CellError
{
    std::string workload;
    std::string model;    ///< modelName() of the failing cell.
    bool baseline = false; ///< the 1-issue denominator cell.
    /** Taxonomy label from classifyException(). */
    std::string kind;
    std::string message;  ///< the exception's what().
    /** Reproducer file path ("" when none was written). */
    std::string reproducerPath;
};

/** All measurements for one benchmark. */
struct BenchmarkResult
{
    std::string name;
    /** Cycle count of the 1-issue Superblock baseline processor. */
    std::uint64_t baseCycles = 0;
    std::map<Model, SimResult> models;
    /**
     * Per-model cell provenance: the digests backing this cell's
     * certified record and predilp_diff's evidence. Filled by
     * SuiteEvaluator alongside `models` (absent for failed cells).
     */
    std::map<Model, CellProvenance> provenance;
    /** Failed cells (empty unless fault isolation caught any). */
    std::vector<CellError> errors;

    /** Speedup of @p model per the paper: base / model cycles. */
    double
    speedup(Model model) const
    {
        auto it = models.find(model);
        if (it == models.end() || it->second.cycles == 0)
            return 0.0;
        return static_cast<double>(baseCycles) /
               static_cast<double>(it->second.cycles);
    }
};

/** Configuration of one whole-suite evaluation. */
struct SuiteConfig
{
    MachineConfig machine;         ///< the k-issue machine.
    bool perfectCaches = true;
    /**
     * Optional-optimization switches (shared AblationFlags struct;
     * also the basis of the evaluator's trace-cache keys).
     */
    AblationFlags ablation;
    /** Input scale multiplier applied to every workload. */
    int scaleMultiplier = 1;
    /**
     * Dynamic-instruction budget per emulation/replay; exceeding it
     * traps with EmuTrap{FuelExhausted}. Tight budgets are how tests
     * force a trapping cell without an infinite-loop workload.
     */
    std::uint64_t maxDynInstrs = 2'000'000'000ull;
    /**
     * Worker threads for suite evaluation: 0 = auto (PREDILP_THREADS
     * environment variable, else hardware concurrency), 1 = serial.
     * Results are identical for every thread count.
     */
    int threads = 0;
};

/**
 * Evaluate one workload under one suite configuration.
 * Convenience wrapper over SuiteEvaluator (driver/evaluator.hh);
 * construct an evaluator directly to share the compile+trace cache
 * across several configurations.
 */
BenchmarkResult evaluateWorkload(const Workload &workload,
                                 const SuiteConfig &config);

/** Evaluate the whole suite. Wrapper over SuiteEvaluator. */
std::vector<BenchmarkResult> evaluateSuite(const SuiteConfig &config);

/**
 * Print a figure-style speedup table (Figures 8-11): one row per
 * benchmark, columns Superblock / Cond. Move / Full Pred., plus the
 * arithmetic mean row the paper reports.
 */
void printSpeedupFigure(std::ostream &os, const std::string &title,
                        const std::vector<BenchmarkResult> &results);

/** Print Table 2: dynamic instruction counts with ratios. */
void printInstructionTable(std::ostream &os,
                           const std::vector<BenchmarkResult> &results);

/** Print Table 3: branches, mispredictions, misprediction rates. */
void printBranchTable(std::ostream &os,
                      const std::vector<BenchmarkResult> &results);

} // namespace predilp

#endif // PREDILP_DRIVER_REPORT_HH
