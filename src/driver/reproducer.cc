#include "driver/reproducer.hh"

#include <atomic>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace predilp
{

namespace
{

/** Hex-encode @p bytes so binary inputs survive the text file. */
std::string
hexEncode(const std::string &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string hex;
    hex.reserve(bytes.size() * 2);
    for (unsigned char c : bytes) {
        hex.push_back(digits[c >> 4]);
        hex.push_back(digits[c & 0xf]);
    }
    return hex;
}

/** Reduce @p text to a filesystem-safe slug. */
std::string
slug(const std::string &text)
{
    std::string out;
    for (char c : text) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out.push_back(c);
        else if (!out.empty() && out.back() != '-')
            out.push_back('-');
    }
    while (!out.empty() && out.back() == '-')
        out.pop_back();
    return out.empty() ? "case" : out;
}

/**
 * Process-wide sequence folded into every reproducer filename.
 * Distinct failures can share (title, kind) — e.g. the same model
 * requested twice in one evaluate() call, or two ablation cells of
 * one workload failing the same way — and without the suffix the
 * second write would silently clobber the first reproducer.
 */
std::atomic<std::uint64_t> reproSeq{0};

} // namespace

std::string
renderReproducer(const ReproducerSpec &spec)
{
    std::ostringstream os;
    os << "// predilp reproducer\n";
    os << "// title: " << spec.title << '\n';
    if (spec.hasSeed)
        os << "// seed: " << spec.seed << '\n';
    if (!spec.model.empty())
        os << "// model: " << spec.model << '\n';
    os << "// ablation: " << spec.ablation.key()
       << " (promotion,branchCombining,heightReduction,unrolling,"
          "orTree,useSelect)\n";
    os << "// scale: " << spec.scale << '\n';
    os << "// kind: " << spec.kind << '\n';
    // Keep the message on one comment line so the file stays
    // parseable ILC whatever the what() text contains.
    std::string message = spec.message;
    for (char &c : message) {
        if (c == '\n' || c == '\r')
            c = ' ';
    }
    os << "// message: " << message << '\n';
    os << "// input-hex: " << hexEncode(spec.input) << '\n';
    os << "//\n";
    os << spec.source;
    if (spec.source.empty() || spec.source.back() != '\n')
        os << '\n';
    return os.str();
}

std::string
writeReproducer(const std::string &dir, const ReproducerSpec &spec)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return "";
    std::filesystem::path path =
        std::filesystem::path(dir) /
        (slug(spec.title) + "-" + slug(spec.kind) + "-" +
         std::to_string(
             reproSeq.fetch_add(1, std::memory_order_relaxed)) +
         ".ilc");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return "";
    out << renderReproducer(spec);
    out.close();
    if (!out)
        return "";
    return path.string();
}

} // namespace predilp
