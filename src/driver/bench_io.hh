/**
 * @file
 * Bench-harness instrumentation output: human-readable per-phase
 * timing and a machine-readable BENCH_<name>.json per benchmark
 * binary, so the performance trajectory (cycles, speedups, elapsed
 * seconds, cache effectiveness) is trackable across PRs.
 */

#ifndef PREDILP_DRIVER_BENCH_IO_HH
#define PREDILP_DRIVER_BENCH_IO_HH

#include <ostream>
#include <string>
#include <vector>

#include "driver/evaluator.hh"
#include "driver/report.hh"

namespace predilp
{

/** Print compile/emulate/simulate phase totals and cache counters. */
void printPhaseTiming(std::ostream &os, const BenchTiming &timing,
                      double wallSeconds, int threads);

/**
 * The harness timing/cache section of BENCH_*.json as a snapshot:
 * phase seconds, cache counters, emulator-backend counters, store
 * counters, and derived throughput leaves.
 */
StatsSnapshot timingSnapshot(const BenchTiming &timing,
                             double wallSeconds, int threads);

/**
 * One (benchmark, model) cell of BENCH_*.json: the simulator's
 * detailed sim.* counters plus the headline numbers (cycles,
 * dyn_instrs, speedup, ...) as top-level leaves. Shared by
 * writeBenchJson and the sweep driver so both emit identical cell
 * payloads.
 */
StatsSnapshot cellSnapshot(const BenchmarkResult &result, Model model,
                           const SimResult &sim);

/**
 * Write BENCH_<benchName>.json (in the working directory). All
 * numeric payloads are StatsSnapshots rendered by toJson(): the
 * harness timing/cache section, the merged per-pass compiler stats
 * (pass @p compilerStats = SuiteEvaluator::compileStats()), and one
 * snapshot per (benchmark, model) cell combining the headline
 * numbers (cycles, dyn_instrs, speedup, ...) with the simulator's
 * detailed `sim.*` counters.
 * @return the path written.
 */
std::string
writeBenchJson(const std::string &benchName,
               const std::vector<BenchmarkResult> &results,
               const BenchTiming &timing, double wallSeconds,
               int threads,
               const StatsSnapshot &compilerStats = StatsSnapshot());

} // namespace predilp

#endif // PREDILP_DRIVER_BENCH_IO_HH
