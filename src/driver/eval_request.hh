/**
 * @file
 * The serializable evaluation-request surface. One EvalRequest
 * describes everything a suite evaluation depends on — workload
 * subset, model subset, the full SimConfig, ablation flags, and
 * input scale — and round-trips through canonical JSON, so the same
 * struct is the in-process API (SuiteEvaluator::evaluate), the
 * wire format between sweep driver and forked workers, and a line
 * in a grid spec.
 *
 * requestDigest() extends SimConfig::configDigest() to the whole
 * request: two requests with equal digests produce bit-identical
 * EvalResponses (given the same source tree), which is what lets
 * the sweep driver detect duplicate cells and label artifacts.
 */

#ifndef PREDILP_DRIVER_EVAL_REQUEST_HH
#define PREDILP_DRIVER_EVAL_REQUEST_HH

#include <string>
#include <vector>

#include "driver/report.hh"
#include "support/json.hh"

namespace predilp
{

/** One complete evaluation request; see file comment. */
struct EvalRequest
{
    /** Workload names to evaluate, in order; empty = whole suite. */
    std::vector<std::string> workloads;

    /** Models per workload; empty = all three paper models. */
    std::vector<Model> models;

    /** Full simulation configuration (machine, caches, BTB, fuel). */
    SimConfig sim;

    /** Optional-optimization switches for every compile. */
    AblationFlags ablation;

    /** Input scale multiplier applied to every workload. */
    int scale = 1;

    /** The model list with the empty default expanded. */
    std::vector<Model> effectiveModels() const;

    /** Canonical JSON object (fixed member order, all fields). */
    JsonValue toJson() const;

    /**
     * Parse a request object. Absent keys keep their defaults;
     * unknown keys throw FatalError (at every nesting level).
     */
    static EvalRequest fromJson(const JsonValue &json);

    /**
     * Versioned digest over the canonical JSON ("v1:" + 32 hex
     * chars), same construction as SimConfig::configDigest.
     */
    std::string requestDigest() const;

    /**
     * Bridge from the legacy SuiteConfig surface: machine, perfect
     * caches, and fuel land in `sim`, everything else maps across.
     * Used by the deprecated SuiteEvaluator shims.
     */
    static EvalRequest fromSuiteConfig(const SuiteConfig &config);

    bool operator==(const EvalRequest &other) const;
};

/** The results of one evaluated EvalRequest. */
struct EvalResponse
{
    /** One entry per requested workload, in request order. */
    std::vector<BenchmarkResult> results;

    /** requestDigest() of the request that produced this. */
    std::string requestDigest;
};

} // namespace predilp

#endif // PREDILP_DRIVER_EVAL_REQUEST_HH
