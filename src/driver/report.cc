#include "driver/report.hh"

#include "driver/evaluator.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/string_utils.hh"

namespace predilp
{

BenchmarkResult
evaluateWorkload(const Workload &workload, const SuiteConfig &config)
{
    SuiteEvaluator evaluator(config.threads);
    EvalRequest request = EvalRequest::fromSuiteConfig(config);
    request.workloads = {workload.name};
    return evaluator.evaluate(request).results.at(0);
}

std::vector<BenchmarkResult>
evaluateSuite(const SuiteConfig &config)
{
    SuiteEvaluator evaluator(config.threads);
    return evaluator.evaluate(EvalRequest::fromSuiteConfig(config))
        .results;
}

void
printSpeedupFigure(std::ostream &os, const std::string &title,
                   const std::vector<BenchmarkResult> &results)
{
    os << title << "\n";
    TextTable table;
    table.setHeader(
        {"Benchmark", "Superblock", "Cond. Move", "Full Pred."});
    std::vector<double> sb;
    std::vector<double> cm;
    std::vector<double> fp;
    for (const auto &r : results) {
        table.addRow({r.name,
                      formatFixed(r.speedup(Model::Superblock), 2),
                      formatFixed(r.speedup(Model::CondMove), 2),
                      formatFixed(r.speedup(Model::FullPred), 2)});
        sb.push_back(r.speedup(Model::Superblock));
        cm.push_back(r.speedup(Model::CondMove));
        fp.push_back(r.speedup(Model::FullPred));
    }
    table.addRow({"(mean)", formatFixed(arithmeticMean(sb), 2),
                  formatFixed(arithmeticMean(cm), 2),
                  formatFixed(arithmeticMean(fp), 2)});
    table.print(os);

    double sbMean = arithmeticMean(sb);
    double cmMean = arithmeticMean(cm);
    double fpMean = arithmeticMean(fp);
    if (sbMean > 0 && cmMean > 0) {
        os << "Cond. Move vs Superblock: "
           << formatFixed((cmMean / sbMean - 1.0) * 100.0, 1)
           << "%  |  Full Pred. vs Cond. Move: "
           << formatFixed((fpMean / cmMean - 1.0) * 100.0, 1)
           << "%  |  Full Pred. vs Superblock: "
           << formatFixed((fpMean / sbMean - 1.0) * 100.0, 1)
           << "%\n";
    }
    os << "\n";
}

void
printInstructionTable(std::ostream &os,
                      const std::vector<BenchmarkResult> &results)
{
    os << "Table 2: dynamic instruction count comparison\n";
    TextTable table;
    table.setHeader(
        {"Benchmark", "Superblk", "Cond. Move", "Full Pred."});
    double cmSum = 0.0;
    double fpSum = 0.0;
    for (const auto &r : results) {
        auto sb = r.models.at(Model::Superblock).dynInstrs;
        auto cm = r.models.at(Model::CondMove).dynInstrs;
        auto fp = r.models.at(Model::FullPred).dynInstrs;
        double cmRatio = static_cast<double>(cm) /
                         static_cast<double>(sb);
        double fpRatio = static_cast<double>(fp) /
                         static_cast<double>(sb);
        cmSum += cmRatio;
        fpSum += fpRatio;
        table.addRow({r.name, formatCount(sb),
                      formatCount(cm) + " (" +
                          formatFixed(cmRatio, 2) + ")",
                      formatCount(fp) + " (" +
                          formatFixed(fpRatio, 2) + ")"});
    }
    auto n = static_cast<double>(results.size());
    table.addRow({"(mean ratio)", "",
                  formatFixed(cmSum / n, 2),
                  formatFixed(fpSum / n, 2)});
    table.print(os);
    os << "\n";
}

void
printBranchTable(std::ostream &os,
                 const std::vector<BenchmarkResult> &results)
{
    os << "Table 3: branches (BR), mispredictions (MP), "
          "misprediction rate (MPR)\n";
    TextTable table;
    table.setHeader({"Benchmark", "BR", "MP", "MPR", "BR", "MP",
                     "MPR", "BR", "MP", "MPR"});
    table.addRow({"", "Superblock", "", "", "Cond. Move", "", "",
                  "Full Pred.", "", ""});
    for (const auto &r : results) {
        std::vector<std::string> row{r.name};
        for (Model model : {Model::Superblock, Model::CondMove,
                            Model::FullPred}) {
            const SimResult &s = r.models.at(model);
            row.push_back(formatCount(s.branches));
            row.push_back(formatCount(s.mispredicts));
            row.push_back(
                formatFixed(s.mispredictRate() * 100.0, 2) + "%");
        }
        table.addRow(std::move(row));
    }
    table.print(os);
    os << "\n";
}

} // namespace predilp
