#include "driver/eval_request.hh"

#include "store/sha256.hh"
#include "support/diag.hh"

namespace predilp
{

std::vector<Model>
EvalRequest::effectiveModels() const
{
    if (!models.empty())
        return models;
    return {Model::Superblock, Model::CondMove, Model::FullPred};
}

JsonValue
EvalRequest::toJson() const
{
    std::vector<JsonValue> workloadItems;
    workloadItems.reserve(workloads.size());
    for (const std::string &name : workloads)
        workloadItems.push_back(JsonValue::makeString(name));
    std::vector<JsonValue> modelItems;
    modelItems.reserve(models.size());
    for (Model model : models)
        modelItems.push_back(JsonValue::makeString(modelKey(model)));
    return JsonValue::makeObject({
        {"workloads", JsonValue::makeArray(std::move(workloadItems))},
        {"models", JsonValue::makeArray(std::move(modelItems))},
        {"sim", sim.toJson()},
        {"ablation", ablation.toJson()},
        {"scale", JsonValue::makeInt(scale)},
    });
}

EvalRequest
EvalRequest::fromJson(const JsonValue &json)
{
    EvalRequest request;
    for (const auto &[key, value] : json.members()) {
        if (key == "workloads") {
            for (const JsonValue &item : value.items())
                request.workloads.push_back(item.asString());
        } else if (key == "models") {
            for (const JsonValue &item : value.items())
                request.models.push_back(
                    modelFromKey(item.asString()));
        } else if (key == "sim") {
            request.sim = SimConfig::fromJson(value);
        } else if (key == "ablation") {
            request.ablation = AblationFlags::fromJson(value);
        } else if (key == "scale") {
            std::int64_t raw = value.asInt();
            if (raw <= 0)
                throw FatalError("request scale must be positive");
            request.scale = static_cast<int>(raw);
        } else {
            throw FatalError("unknown request key '" + key + "'");
        }
    }
    return request;
}

std::string
EvalRequest::requestDigest() const
{
    std::string canonical =
        "predilp-evalrequest-v1\n" + toJson().dump();
    return "v1:" + sha256Hex(canonical).substr(0, 32);
}

EvalRequest
EvalRequest::fromSuiteConfig(const SuiteConfig &config)
{
    EvalRequest request;
    request.sim.machine = config.machine;
    request.sim.perfectCaches = config.perfectCaches;
    request.sim.maxDynInstrs = config.maxDynInstrs;
    request.ablation = config.ablation;
    request.scale = config.scaleMultiplier;
    return request;
}

bool
EvalRequest::operator==(const EvalRequest &other) const
{
    return workloads == other.workloads && models == other.models &&
           sim == other.sim && ablation == other.ablation &&
           scale == other.scale;
}

} // namespace predilp
