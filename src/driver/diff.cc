#include "driver/diff.hh"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "driver/certified.hh"
#include "store/store.hh"
#include "support/diag.hh"
#include "support/logging.hh"

namespace predilp
{

namespace
{

namespace fs = std::filesystem;

/** Evidence digests compared across runs, in report order. */
const char *const kEvidenceKeys[] = {
    "source_sha256",
    "pipeline_digest",
    "config_digest",
    "trace_digest",
};

std::map<std::string, std::string>
evidenceFrom(const JsonValue &prov)
{
    std::map<std::string, std::string> evidence;
    if (!prov.isObject())
        return evidence;
    for (const char *key : kEvidenceKeys) {
        const JsonValue *value = prov.find(key);
        if (value != nullptr &&
            value->kind() == JsonValue::Kind::String)
            evidence[key] = value->asString();
    }
    return evidence;
}

/**
 * Collect every numeric/bool leaf of @p value under dotted keys.
 * Values keep their exact lexical rendering: determinism is the
 * repo-wide contract, so lexical equality is figure equality.
 */
void
flattenFigures(const JsonValue &value, const std::string &prefix,
               std::map<std::string, std::string> &out)
{
    if (value.isObject()) {
        for (const auto &[key, member] : value.members())
            flattenFigures(member,
                           prefix.empty() ? key : prefix + "." + key,
                           out);
    } else if (value.isNumber() ||
               value.kind() == JsonValue::Kind::Bool) {
        out[prefix] = value.dump();
    }
    // Strings are identity/metadata, not figures; arrays do not
    // occur in cell snapshots.
}

/** One BENCH "benchmarks" array: a cell per (benchmark, model). */
void
addBenchmarks(const JsonValue &benchmarks,
              const std::string &identityPrefix,
              const std::string &origin, ResultSet &set)
{
    for (const JsonValue &benchmark : benchmarks.items()) {
        if (!benchmark.isObject())
            continue;
        const JsonValue *name = benchmark.find("name");
        const JsonValue *models = benchmark.find("models");
        if (name == nullptr || models == nullptr ||
            !models->isObject())
            continue;
        const JsonValue *provs = benchmark.find("provenance");
        const JsonValue *base = benchmark.find("base_cycles");
        for (const auto &[modelName, snapshot] :
             models->members()) {
            DiffCell cell;
            cell.identity = identityPrefix + "/" +
                            name->asString() + "/" + modelName;
            cell.origin = origin;
            flattenFigures(snapshot, "", cell.figures);
            if (base != nullptr && base->isNumber()) {
                // The baseline denominator feeds every speedup, so
                // it is a figure of every cell that shares it.
                cell.figures["base_cycles"] = base->dump();
            }
            if (provs != nullptr && provs->isObject()) {
                if (const JsonValue *prov = provs->find(modelName))
                    cell.evidence = evidenceFrom(*prov);
            }
            set.cells.push_back(std::move(cell));
        }
    }
}

/** One BENCH_*.json document — flat (bench_io) or sweep-shaped. */
void
addBenchDoc(const JsonValue &doc, const std::string &origin,
            ResultSet &set)
{
    if (!doc.isObject())
        throw FatalError(origin + ": BENCH document is not an object");
    std::string benchName = origin;
    if (const JsonValue *bench = doc.find("bench");
        bench != nullptr && bench->kind() == JsonValue::Kind::String)
        benchName = bench->asString();
    if (const JsonValue *cells = doc.find("cells")) {
        // Sweep document: one entry per grid cell; degraded cells
        // (no "benchmarks") carry no figures to compare.
        for (const JsonValue &cell : cells->items()) {
            if (!cell.isObject())
                continue;
            const JsonValue *benchmarks = cell.find("benchmarks");
            if (benchmarks == nullptr)
                continue;
            std::string cellId = benchName;
            if (const JsonValue *axes = cell.find("axes"))
                cellId += "/" + axes->dump();
            addBenchmarks(*benchmarks, cellId, origin, set);
        }
        return;
    }
    if (const JsonValue *benchmarks = doc.find("benchmarks"))
        addBenchmarks(*benchmarks, benchName, origin, set);
}

/** The identity half of a certified record's provenance object,
 * rendered exactly as CellProvenance::identityKey(). */
std::string
certIdentity(const JsonValue &prov)
{
    auto str = [&prov](const char *key) -> std::string {
        const JsonValue *value = prov.find(key);
        return value != nullptr &&
                       value->kind() == JsonValue::Kind::String
                   ? value->asString()
                   : "?";
    };
    auto num = [&prov](const char *key) -> std::string {
        const JsonValue *value = prov.find(key);
        return value != nullptr && value->isNumber()
                   ? value->dump()
                   : "?";
    };
    std::ostringstream os;
    os << str("workload") << '|' << str("model") << "|s"
       << num("scale") << "|a" << str("ablation") << "|f"
       << num("fuel") << "|m" << str("machine");
    return os.str();
}

void
addCertRecord(const std::string &path, ResultSet &set)
{
    std::optional<JsonValue> record = readSealedJson(path);
    if (!record) {
        set.invalidRecords++;
        return;
    }
    const JsonValue *schema = record->find("schema");
    const JsonValue *prov = record->find("provenance");
    const JsonValue *figures = record->find("figures");
    if (schema == nullptr ||
        schema->kind() != JsonValue::Kind::String ||
        schema->asString() != certSchemaTag || prov == nullptr ||
        !prov->isObject() || figures == nullptr ||
        !figures->isObject()) {
        set.invalidRecords++;
        return;
    }
    DiffCell cell;
    cell.identity = certIdentity(*prov);
    cell.evidence = evidenceFrom(*prov);
    cell.origin = path;
    flattenFigures(*figures, "", cell.figures);
    set.cells.push_back(std::move(cell));
}

std::vector<std::string>
sortedFiles(const std::string &dir, bool recursive,
            const std::string &suffix, const std::string &prefix)
{
    std::vector<std::string> paths;
    std::error_code ec;
    auto matches = [&](const fs::path &p) {
        const std::string name = p.filename().string();
        return name.size() >= suffix.size() &&
               name.compare(name.size() - suffix.size(),
                            suffix.size(), suffix) == 0 &&
               name.compare(0, prefix.size(), prefix) == 0;
    };
    if (recursive) {
        for (auto it = fs::recursive_directory_iterator(dir, ec);
             !ec && it != fs::recursive_directory_iterator(); ++it)
            if (it->is_regular_file(ec) && matches(it->path()))
                paths.push_back(it->path().string());
    } else {
        for (auto it = fs::directory_iterator(dir, ec);
             !ec && it != fs::directory_iterator(); ++it)
            if (it->is_regular_file(ec) && matches(it->path()))
                paths.push_back(it->path().string());
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

JsonValue
parseFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw FatalError("cannot read '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return JsonValue::parse(text.str());
    } catch (const std::exception &e) {
        throw FatalError("malformed JSON in '" + path +
                         "': " + e.what());
    }
}

/** Compare two cells and append the classified entry (or count an
 * identical pair). */
void
classifyPair(const DiffCell &before, const DiffCell &after,
             DiffReport &report)
{
    DiffEntry entry;
    entry.identity = after.identity;
    auto collect = [](const std::map<std::string, std::string> &b,
                      const std::map<std::string, std::string> &a,
                      std::vector<DiffDelta> &out) {
        std::map<std::string, std::pair<std::string, std::string>>
            joined;
        for (const auto &[key, value] : b)
            joined[key].first = value;
        for (const auto &[key, value] : a)
            joined[key].second = value;
        for (const auto &[key, values] : joined)
            if (values.first != values.second)
                out.push_back(
                    {key, values.first, values.second});
    };
    collect(before.evidence, after.evidence, entry.digests);
    collect(before.figures, after.figures, entry.figures);
    if (entry.digests.empty() && entry.figures.empty()) {
        report.identical++;
        return;
    }
    if (!entry.digests.empty()) {
        // Provenance moved: whatever the figures did, the change
        // has a named cause.
        entry.kind = DiffKind::Explained;
        report.explained++;
    } else {
        entry.kind = DiffKind::Unexplained;
        report.unexplained++;
    }
    report.entries.push_back(std::move(entry));
}

void
addUnmatched(const DiffCell &cell, DiffKind kind, DiffReport &report)
{
    DiffEntry entry;
    entry.kind = kind;
    entry.identity = cell.identity;
    if (kind == DiffKind::Added)
        report.added++;
    else
        report.removed++;
    report.entries.push_back(std::move(entry));
}

} // namespace

ResultSet
loadResultSet(const std::string &path)
{
    ResultSet set;
    set.label = path;
    std::error_code ec;
    if (!fs::is_directory(path, ec)) {
        addBenchDoc(parseFile(path), path, set);
        return set;
    }
    // A store root keeps certified records under results/; a bare
    // directory of records (e.g. an archived copy of results/) is
    // recognized by its *.cert.json files. Anything else is a
    // directory of BENCH_*.json documents.
    std::string certRoot;
    if (fs::is_directory(fs::path(path) / "results", ec))
        certRoot = (fs::path(path) / "results").string();
    else if (!sortedFiles(path, true, ".cert.json", "").empty())
        certRoot = path;
    if (!certRoot.empty()) {
        for (const std::string &file :
             sortedFiles(certRoot, true, ".cert.json", ""))
            addCertRecord(file, set);
        return set;
    }
    const std::vector<std::string> files =
        sortedFiles(path, false, ".json", "BENCH_");
    if (files.empty())
        throw FatalError("no BENCH_*.json or *.cert.json under '" +
                         path + "'");
    for (const std::string &file : files)
        addBenchDoc(parseFile(file), file, set);
    return set;
}

const char *
diffKindName(DiffKind kind)
{
    switch (kind) {
      case DiffKind::Identical:
        return "identical";
      case DiffKind::Explained:
        return "explained";
      case DiffKind::Unexplained:
        return "unexplained drift";
      case DiffKind::Added:
        return "added";
      case DiffKind::Removed:
        return "removed";
    }
    return "?";
}

DiffReport
diffResultSets(const ResultSet &before, const ResultSet &after)
{
    // std::map keys the join and fixes the report order.
    std::map<std::string, std::vector<const DiffCell *>> beforeBy;
    std::map<std::string, std::vector<const DiffCell *>> afterBy;
    for (const DiffCell &cell : before.cells)
        beforeBy[cell.identity].push_back(&cell);
    for (const DiffCell &cell : after.cells)
        afterBy[cell.identity].push_back(&cell);

    DiffReport report;
    std::map<std::string, std::pair<bool, bool>> identities;
    for (const auto &[identity, cells] : beforeBy)
        identities[identity].first = true;
    for (const auto &[identity, cells] : afterBy)
        identities[identity].second = true;

    for (const auto &[identity, present] : identities) {
        if (!present.first) {
            for (const DiffCell *cell : afterBy[identity])
                addUnmatched(*cell, DiffKind::Added, report);
            continue;
        }
        if (!present.second) {
            for (const DiffCell *cell : beforeBy[identity])
                addUnmatched(*cell, DiffKind::Removed, report);
            continue;
        }
        std::vector<const DiffCell *> b = beforeBy[identity];
        std::vector<const DiffCell *> a = afterBy[identity];
        if (b.size() == 1 && a.size() == 1) {
            classifyPair(*b.front(), *a.front(), report);
            continue;
        }
        // Several cells share an identity (e.g. one identity priced
        // under several SimConfigs in a store set): sub-match on
        // config_digest first, then pair a single leftover on each
        // side (a config flip of the same cell → explained).
        auto digestOf = [](const DiffCell *cell) {
            auto it = cell->evidence.find("config_digest");
            return it == cell->evidence.end() ? std::string()
                                              : it->second;
        };
        std::vector<const DiffCell *> bLeft;
        for (const DiffCell *bc : b) {
            bool matched = false;
            for (auto it = a.begin(); it != a.end(); ++it) {
                if (digestOf(*it) == digestOf(bc)) {
                    classifyPair(*bc, **it, report);
                    a.erase(it);
                    matched = true;
                    break;
                }
            }
            if (!matched)
                bLeft.push_back(bc);
        }
        if (bLeft.size() == 1 && a.size() == 1) {
            classifyPair(*bLeft.front(), *a.front(), report);
        } else {
            for (const DiffCell *cell : bLeft)
                addUnmatched(*cell, DiffKind::Removed, report);
            for (const DiffCell *cell : a)
                addUnmatched(*cell, DiffKind::Added, report);
        }
    }
    return report;
}

void
printDiffReport(std::ostream &os, const DiffReport &report,
                bool verbose)
{
    constexpr std::size_t figureCap = 6;
    for (const DiffEntry &entry : report.entries) {
        os << diffKindName(entry.kind);
        for (std::size_t pad = std::strlen(diffKindName(entry.kind));
             pad < 18; ++pad)
            os << ' ';
        os << entry.identity << '\n';
        for (const DiffDelta &delta : entry.digests)
            os << "    " << delta.name << ": "
               << (delta.before.empty() ? "(absent)" : delta.before)
               << " -> "
               << (delta.after.empty() ? "(absent)" : delta.after)
               << '\n';
        std::size_t shown = 0;
        for (const DiffDelta &delta : entry.figures) {
            if (!verbose && shown == figureCap) {
                os << "    ... and "
                   << entry.figures.size() - shown
                   << " more figure(s)\n";
                break;
            }
            os << "    " << delta.name << ": "
               << (delta.before.empty() ? "(absent)" : delta.before)
               << " -> "
               << (delta.after.empty() ? "(absent)" : delta.after)
               << '\n';
            ++shown;
        }
    }
    os << "diff: " << report.identical << " identical, "
       << report.explained << " explained, " << report.unexplained
       << " unexplained drift, " << report.added << " added, "
       << report.removed << " removed\n";
}

JsonValue
diffReportToJson(const DiffReport &report)
{
    auto deltas = [](const std::vector<DiffDelta> &list) {
        std::vector<JsonValue> items;
        items.reserve(list.size());
        for (const DiffDelta &delta : list)
            items.push_back(JsonValue::makeObject({
                {"name", JsonValue::makeString(delta.name)},
                {"before", JsonValue::makeString(delta.before)},
                {"after", JsonValue::makeString(delta.after)},
            }));
        return JsonValue::makeArray(std::move(items));
    };
    std::vector<JsonValue> entries;
    entries.reserve(report.entries.size());
    for (const DiffEntry &entry : report.entries)
        entries.push_back(JsonValue::makeObject({
            {"kind",
             JsonValue::makeString(diffKindName(entry.kind))},
            {"identity", JsonValue::makeString(entry.identity)},
            {"digests", deltas(entry.digests)},
            {"figures", deltas(entry.figures)},
        }));
    return JsonValue::makeObject({
        {"identical", JsonValue::makeInt(
                          static_cast<std::int64_t>(
                              report.identical))},
        {"explained", JsonValue::makeInt(
                          static_cast<std::int64_t>(
                              report.explained))},
        {"unexplained", JsonValue::makeInt(
                            static_cast<std::int64_t>(
                                report.unexplained))},
        {"added", JsonValue::makeInt(
                      static_cast<std::int64_t>(report.added))},
        {"removed", JsonValue::makeInt(
                        static_cast<std::int64_t>(report.removed))},
        {"entries", JsonValue::makeArray(std::move(entries))},
    });
}

int
verifyStoreProvenance(std::ostream &os, const std::string &storeDir)
{
    int violations = 0;
    std::error_code ec;
    const fs::path objects = fs::path(storeDir) / "objects";
    if (fs::is_directory(objects, ec)) {
        for (const std::string &path :
             sortedFiles(objects.string(), true, ".trc", "")) {
            std::optional<ArtifactInfo> info =
                inspectArtifact(path);
            if (!info) {
                os << "violation: corrupt artifact " << path
                   << '\n';
                ++violations;
                continue;
            }
            const std::string provPath = path + ".prov.json";
            std::optional<JsonValue> prov =
                readSealedJson(provPath);
            if (!prov) {
                os << "violation: missing or torn sidecar for "
                   << path << '\n';
                ++violations;
                continue;
            }
            const JsonValue *recorded =
                prov->find("artifact_checksum");
            if (recorded == nullptr ||
                recorded->kind() != JsonValue::Kind::String ||
                recorded->asString() !=
                    artifactChecksumString(info->payloadChecksum)) {
                os << "violation: stale sidecar for " << path
                   << '\n';
                ++violations;
            }
        }
        // Orphan sidecars (artifact gone — a writer died between
        // sidecar and artifact publish) are never served; GC sweeps
        // them. Report, don't fail.
        for (const std::string &prov :
             sortedFiles(objects.string(), true, ".prov.json", "")) {
            const std::string artifact =
                prov.substr(0, prov.size() -
                                   std::strlen(".prov.json"));
            if (!fs::exists(artifact, ec))
                os << "note: orphan sidecar " << prov << '\n';
        }
    }
    const fs::path results = fs::path(storeDir) / "results";
    if (fs::is_directory(results, ec)) {
        for (const std::string &path :
             sortedFiles(results.string(), true, ".cert.json",
                         "")) {
            if (!readSealedJson(path)) {
                os << "violation: invalid certified record " << path
                   << '\n';
                ++violations;
            }
        }
    }
    return violations;
}

} // namespace predilp
