/**
 * @file
 * SuiteEvaluator: cached, parallel evaluation of the benchmark suite.
 *
 * Trace-once/replay-many: every (workload, model, machine,
 * ablation-flag) combination is compiled and functionally emulated at
 * most once per evaluator; the captured TraceBuffer is then replayed
 * under as many SimConfigs as callers request (perfect vs. real
 * caches, different BTBs, ...). Cache keys canonicalize ablation
 * flags that cannot affect a model's compilation (e.g. the OR-tree
 * flag for the Superblock model), so ablation sweeps reuse aggres-
 * sively. Reference (oracle) runs and priced SimResults are cached
 * too.
 *
 * Compilation itself is split: the model-independent front end
 * (parse + classical opt + primary profiling) is computed once per
 * (workload, scale) as a FrontendSnapshot and deep-cloned per model,
 * so the three models of a cell only pay for their model-specific
 * pass suffixes.
 *
 * Evaluation fans out over a ThreadPool — across the workloads of an
 * EvalRequest and across model cells inside each workload row — with
 * results assembled by index, so output is deterministic and
 * identical for every thread count. evaluate(const EvalRequest&) is
 * the single entry point; evaluateBatch() amortizes many requests by
 * grouping their cells by trace key and pricing each trace's configs
 * in one replayBatch() pass.
 */

#ifndef PREDILP_DRIVER_EVALUATOR_HH
#define PREDILP_DRIVER_EVALUATOR_HH

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "driver/eval_request.hh"
#include "driver/report.hh"
#include "emu/decoded.hh"
#include "store/store.hh"
#include "support/stats_registry.hh"
#include "support/thread_pool.hh"
#include "support/timer.hh"
#include "trace/replay.hh"

namespace predilp
{

/** Per-phase wall-clock totals and cache counters. */
struct BenchTiming
{
    double compileSeconds = 0;  ///< prefix + model compiles.
    double captureSeconds = 0;  ///< trace-producing emulation + refs.
    double replaySeconds = 0;   ///< pricing captured traces.
    std::uint64_t compiles = 0; ///< model compilations finished.
    std::uint64_t prefixCompiles = 0; ///< front-end snapshots built.
    std::uint64_t prefixCacheHits = 0; ///< snapshot-cache hits.
    std::uint64_t captures = 0; ///< emulation runs (traces + refs).
    std::uint64_t replays = 0;  ///< replay passes priced.
    std::uint64_t traceCacheHits = 0;
    std::uint64_t resultCacheHits = 0;
    std::uint64_t traceBytes = 0; ///< resident captured-trace bytes.
    std::uint64_t tracePeakBytes = 0; ///< high-water resident bytes.
    std::uint64_t capturedBytes = 0;  ///< cumulative trace bytes.
    std::uint64_t capturedRecords = 0; ///< records ever captured.
    std::uint64_t replayedRecords = 0; ///< records priced by replays.
    std::uint64_t storeHits = 0;    ///< traces loaded from disk.
    std::uint64_t storeMisses = 0;  ///< store lookups that missed.
    std::uint64_t storeRepairs = 0; ///< corrupt artifacts replaced.
    std::uint64_t storeWrites = 0;  ///< artifacts published to disk.
    std::uint64_t storeBytesMapped = 0; ///< bytes mmap'd on hits.
    double decodeSeconds = 0; ///< pre-decoding for the threaded engine.
    std::uint64_t decodes = 0; ///< DecodedPrograms built.
    std::uint64_t decodedCacheHits = 0; ///< decoded-cache hits.
    std::uint64_t decodedBytes = 0; ///< resident decoded-program bytes.
    std::uint64_t threadedRecords = 0; ///< records emulated threaded.
    std::uint64_t interpRecords = 0; ///< records emulated interpreted.
    /// Threaded captures retried on the interpreter oracle.
    std::uint64_t backendFallbacks = 0;
    /// Batch groups that fell back to sequential recompute.
    std::uint64_t batchFallbacks = 0;
};

/**
 * How the evaluator handles failing cells. Strict (the default):
 * the first failure propagates out of evaluate() as its typed
 * exception. Isolated: a throwing cell degrades to a CellError
 * record on the BenchmarkResult — with a self-contained reproducer
 * file when reproducerDir is set — and every other cell completes
 * normally.
 */
struct EvalPolicy
{
    /** Degrade failing cells to CellError records. */
    bool isolateFaults = false;
    /** Run the IR verifier after every compiler pass. */
    bool verifyEachPass = false;
    /** Directory for reproducer files ("" = don't write any). */
    std::string reproducerDir;
    /**
     * Persistent artifact-store tier (second level under the
     * in-process trace cache). Off by default; the SuiteEvaluator
     * constructor seeds these from PREDILP_STORE /
     * PREDILP_STORE_MODE so benches and CI opt in without code
     * changes, and setPolicy can override both afterwards.
     */
    StoreMode storeMode = StoreMode::Off;
    /** Store root directory (ignored while storeMode is Off). */
    std::string storeDir;
};

/** Cached parallel evaluator; see file comment. */
class SuiteEvaluator
{
  public:
    /** @param threads 0 = PREDILP_THREADS env / hardware count. */
    explicit SuiteEvaluator(int threads = 0);

    /** Resolved parallelism. */
    int threadCount() const { return pool_.threadCount(); }

    /**
     * Replace the policy (failure handling + store tier). Call
     * before evaluating: the store is (re)opened here, not lazily.
     */
    void setPolicy(EvalPolicy policy);

    /** The active failure-handling policy. */
    const EvalPolicy &policy() const { return policy_; }

    /**
     * THE evaluation entry point: run @p request's workloads (empty
     * = whole suite) under its models (empty = all three), each cell
     * at the request's full SimConfig plus the 1-issue Superblock
     * baseline denominator. Workloads and cells fan out over the
     * pool; results are assembled by index in request order, so the
     * response is deterministic for every thread count. Unknown
     * workload names throw FatalError (requests are user input).
     */
    EvalResponse evaluate(const EvalRequest &request);

    /**
     * Batched evaluation of many requests: plan every cell up front,
     * group the pending work by trace key — trace keys are
     * machine-only by design, so cells that vary only cache/BTB/
     * predictor axes share a group, as do the 1-issue baseline
     * denominators of a whole sweep — then dispatch trace-major
     * replayBatch() passes across the pool. Each captured trace is
     * loaded and walked once for *all* of its pending configs
     * instead of once per cell. The priced results seed the result
     * cache and responses are assembled through evaluate(), so the
     * output is bit-identical to calling evaluate() per request,
     * index-aligned with @p requests. A group that fails during the
     * batch phase is left unseeded; the assembly pass recomputes it
     * and applies the failure policy exactly as the unbatched path
     * would.
     */
    std::vector<EvalResponse>
    evaluateBatch(const std::vector<EvalRequest> &requests);

    /**
     * Drop all cached TraceBuffers (priced SimResults stay cached).
     * Call between workload batches to bound resident memory.
     */
    void releaseTraces();

    /** Accumulated phase timing and cache counters so far. */
    BenchTiming timing() const;

    /**
     * Per-pass compiler counters and timers (opt.*, superblock.*,
     * hyperblock.*, partial.*, sched.*, driver.profile.*) summed
     * over every compilation this evaluator performed. Counter
     * totals are deterministic for every thread count (each compile
     * records into a private registry, merged additively); the
     * *.seconds timer leaves are wall-clock and naturally vary.
     */
    StatsSnapshot compileStats() const;

    /** The persistent store tier, or nullptr when storeMode is Off. */
    const ArtifactStore *store() const { return store_.get(); }

  private:
    using TracePtr = std::shared_ptr<const TraceBuffer>;
    using SnapshotPtr = std::shared_ptr<const FrontendSnapshot>;
    using DecodedPtr = std::shared_ptr<const DecodedProgram>;

    /** (Re)open store_ to match policy_; Off closes it. */
    void openStore();

    /**
     * The shared front-end snapshot for (workload, scale): parse +
     * classical optimization + primary profiling, computed once and
     * resumed by every model/ablation compile of the cell
     * (compileFromSnapshot). Keyed only by workload and scale —
     * nothing in the prefix reads the model, machine, or ablation
     * flags.
     */
    SnapshotPtr snapshotFor(const Workload &workload,
                            const std::string &input, int scale,
                            std::uint64_t profileFuel);

    /**
     * The threaded engine's pre-decoded form of @p prog, cached by
     * the compile's identity (workload, scale, model, canonical
     * ablation flags, machine) — everything that determines the
     * compiled program, and nothing that doesn't (fuel): captures at
     * different budgets share one decode, like the front-end
     * snapshot cache shares one prefix across models. A
     * DecodedProgram is self-contained, so it may outlive @p prog.
     */
    DecodedPtr decodedFor(const Program &prog,
                          const std::string &key);

    TracePtr traceFor(const Workload &workload,
                      const EvalRequest &request, Model model,
                      const MachineConfig &machine,
                      const std::string &input, std::uint64_t fuel,
                      const std::string &key);
    RunResult referenceFor(const Workload &workload,
                           const std::string &input, int scale);
    SimResult cellResult(const Workload &workload,
                         const EvalRequest &request, Model model,
                         const MachineConfig &machine,
                         const SimConfig &sim,
                         const std::string &input);

    /**
     * Publish a batch-priced result under @p rkey as an
     * already-ready cache entry; a no-op when the key is present
     * (another thread computed or seeded it first).
     */
    void seedResult(const std::string &rkey, SimResult result);

    /**
     * One workload's row of @p request: the baseline denominator
     * cell plus one cell per model, fanned out over the pool.
     */
    BenchmarkResult evaluateCells(const Workload &workload,
                                  const EvalRequest &request);

    EvalPolicy policy_;
    std::unique_ptr<ArtifactStore> store_;
    ThreadPool pool_;
    std::mutex mutex_;
    std::unordered_map<std::string, std::shared_future<TracePtr>>
        traces_;
    std::unordered_map<std::string, std::shared_future<RunResult>>
        references_;
    std::unordered_map<std::string, std::shared_future<SimResult>>
        results_;
    std::unordered_map<std::string, std::shared_future<SnapshotPtr>>
        snapshots_;
    std::unordered_map<std::string, std::shared_future<DecodedPtr>>
        decoded_;

    PhaseAccumulator compileTime_;
    PhaseAccumulator captureTime_;
    PhaseAccumulator replayTime_;
    PhaseAccumulator decodeTime_;
    std::atomic<std::uint64_t> compiles_{0};
    std::atomic<std::uint64_t> prefixCompiles_{0};
    std::atomic<std::uint64_t> prefixCacheHits_{0};
    std::atomic<std::uint64_t> captures_{0};
    std::atomic<std::uint64_t> replays_{0};
    std::atomic<std::uint64_t> traceCacheHits_{0};
    std::atomic<std::uint64_t> resultCacheHits_{0};
    std::atomic<std::uint64_t> referenceCacheHits_{0};
    std::atomic<std::uint64_t> traceBytes_{0};
    std::atomic<std::uint64_t> tracePeakBytes_{0};
    std::atomic<std::uint64_t> capturedBytes_{0};
    std::atomic<std::uint64_t> capturedRecords_{0};
    std::atomic<std::uint64_t> replayedRecords_{0};
    std::atomic<std::uint64_t> decodes_{0};
    std::atomic<std::uint64_t> decodedCacheHits_{0};
    std::atomic<std::uint64_t> decodedBytes_{0};
    std::atomic<std::uint64_t> threadedRecords_{0};
    std::atomic<std::uint64_t> interpRecords_{0};
    std::atomic<std::uint64_t> backendFallbacks_{0};
    std::atomic<std::uint64_t> batchFallbacks_{0};

    /** Merged per-compile pass stats (internally synchronized). */
    StatsRegistry compileStats_;
};

} // namespace predilp

#endif // PREDILP_DRIVER_EVALUATOR_HH
