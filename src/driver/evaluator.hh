/**
 * @file
 * SuiteEvaluator: cached, parallel evaluation of the benchmark suite.
 *
 * Trace-once/replay-many: every (workload, model, machine,
 * ablation-flag) combination is compiled and functionally emulated at
 * most once per evaluator; the captured TraceBuffer is then replayed
 * under as many SimConfigs as callers request (perfect vs. real
 * caches, different BTBs, ...). Cache keys canonicalize ablation
 * flags that cannot affect a model's compilation (e.g. the OR-tree
 * flag for the Superblock model), so ablation sweeps reuse aggres-
 * sively. Reference (oracle) runs and priced SimResults are cached
 * too.
 *
 * Evaluation fans out over a ThreadPool — across workloads in
 * evaluateSuite() and across model cells inside evaluate() — with
 * results assembled by index, so output is deterministic and
 * identical for every thread count.
 */

#ifndef PREDILP_DRIVER_EVALUATOR_HH
#define PREDILP_DRIVER_EVALUATOR_HH

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "driver/report.hh"
#include "support/stats_registry.hh"
#include "support/thread_pool.hh"
#include "support/timer.hh"
#include "trace/replay.hh"

namespace predilp
{

/** Per-phase wall-clock totals and cache counters. */
struct BenchTiming
{
    double compileSeconds = 0;  ///< compileForModel (incl. profiling).
    double captureSeconds = 0;  ///< trace-producing emulation + refs.
    double replaySeconds = 0;   ///< pricing captured traces.
    std::uint64_t compiles = 0; ///< programs compiled.
    std::uint64_t captures = 0; ///< emulation runs (traces + refs).
    std::uint64_t replays = 0;  ///< replay passes priced.
    std::uint64_t traceCacheHits = 0;
    std::uint64_t resultCacheHits = 0;
    std::uint64_t traceBytes = 0; ///< resident captured-trace bytes.
};

/** Cached parallel evaluator; see file comment. */
class SuiteEvaluator
{
  public:
    /** @param threads 0 = PREDILP_THREADS env / hardware count. */
    explicit SuiteEvaluator(int threads = 0);

    /** Resolved parallelism. */
    int threadCount() const { return pool_.threadCount(); }

    /**
     * Evaluate one workload: 1-issue Superblock baseline plus the
     * three models (or a subset) at @p config's machine.
     */
    BenchmarkResult evaluate(const Workload &workload,
                             const SuiteConfig &config);
    BenchmarkResult evaluate(const Workload &workload,
                             const SuiteConfig &config,
                             const std::vector<Model> &models);

    /** Evaluate the whole suite (or the named subset), in order. */
    std::vector<BenchmarkResult>
    evaluateSuite(const SuiteConfig &config);
    std::vector<BenchmarkResult>
    evaluateSuite(const SuiteConfig &config,
                  const std::vector<std::string> &onlyNames);

    /**
     * Drop all cached TraceBuffers (priced SimResults stay cached).
     * Call between workload batches to bound resident memory.
     */
    void releaseTraces();

    /** Accumulated phase timing and cache counters so far. */
    BenchTiming timing() const;

    /**
     * Per-pass compiler counters and timers (opt.*, superblock.*,
     * hyperblock.*, partial.*, sched.*, driver.profile.*) summed
     * over every compilation this evaluator performed. Counter
     * totals are deterministic for every thread count (each compile
     * records into a private registry, merged additively); the
     * *.seconds timer leaves are wall-clock and naturally vary.
     */
    StatsSnapshot compileStats() const;

  private:
    using TracePtr = std::shared_ptr<const TraceBuffer>;

    TracePtr traceFor(const Workload &workload,
                      const SuiteConfig &config, Model model,
                      const MachineConfig &machine,
                      const std::string &input, std::uint64_t fuel,
                      const std::string &key);
    RunResult referenceFor(const Workload &workload,
                           const std::string &input, int scale);
    SimResult cellResult(const Workload &workload,
                         const SuiteConfig &config, Model model,
                         const MachineConfig &machine,
                         const SimConfig &sim,
                         const std::string &input);

    ThreadPool pool_;
    std::mutex mutex_;
    std::unordered_map<std::string, std::shared_future<TracePtr>>
        traces_;
    std::unordered_map<std::string, std::shared_future<RunResult>>
        references_;
    std::unordered_map<std::string, std::shared_future<SimResult>>
        results_;

    PhaseAccumulator compileTime_;
    PhaseAccumulator captureTime_;
    PhaseAccumulator replayTime_;
    std::atomic<std::uint64_t> compiles_{0};
    std::atomic<std::uint64_t> captures_{0};
    std::atomic<std::uint64_t> replays_{0};
    std::atomic<std::uint64_t> traceCacheHits_{0};
    std::atomic<std::uint64_t> resultCacheHits_{0};
    std::atomic<std::uint64_t> referenceCacheHits_{0};
    std::atomic<std::uint64_t> traceBytes_{0};

    /** Merged per-compile pass stats (internally synchronized). */
    StatsRegistry compileStats_;
};

} // namespace predilp

#endif // PREDILP_DRIVER_EVALUATOR_HH
