/**
 * @file
 * Certified result records: the provenance identity of one priced
 * bench/sweep cell and its sealed, schema-tagged JSON record
 * (DESIGN.md §6k).
 *
 * The paper's headline claims are figure deltas, so the system of
 * record must make "did this number change, and why?" answerable
 * with evidence. Every cell the evaluator prices is published to the
 * store as a certified record: the cell's full provenance — source
 * hash, pass-pipeline digest, SimConfig digest, trace digest — plus
 * its deterministic figures, sealed with its own checksum
 * (store/store.hh sealRecord) and written through the staged
 * write→fsync→rename path. `predilp_diff` (driver/diff.hh) joins two
 * sets of these records by provenance identity and classifies every
 * figure delta as identical, explained by a named digest change, or
 * unexplained drift.
 */

#ifndef PREDILP_DRIVER_CERTIFIED_HH
#define PREDILP_DRIVER_CERTIFIED_HH

#include <cstdint>
#include <string>

#include "driver/pipeline.hh"
#include "support/json.hh"

namespace predilp
{

struct SimResult;

/**
 * Schema tag carried by every certified record and hashed into its
 * store key. Bump it on any intended change to record shape or
 * figure semantics: old and new records then live under different
 * keys, so the change surfaces in predilp_diff as added/removed
 * cells instead of unexplained drift.
 */
inline constexpr const char *certSchemaTag = "predilp-cert-v1";

/**
 * Everything that identifies one priced cell and everything that can
 * explain its figures changing. The identity members (workload,
 * model, scale, ablation, fuel, machine) say *which* cell; the
 * digest members say *why* its figures are what they are — a figure
 * change with all four digests equal is unexplained drift.
 */
struct CellProvenance
{
    std::string workload;       ///< workload name ("cmp").
    std::string model;          ///< modelKey() string.
    int scale = 1;              ///< input scale factor.
    std::string ablation;       ///< canonical AblationFlags::key().
    std::uint64_t fuel = 0;     ///< capture fuel (maxDynInstrs).
    std::string machine;        ///< machineIdentity() of the config.
    std::string sourceSha256;   ///< sha256 of the ILC source bytes.
    std::string pipelineDigest; ///< passPipelineDigest().
    std::string configDigest;   ///< SimConfig::configDigest().
    std::string traceDigest;    ///< ArtifactStore content key.

    /** Canonical JSON object (fixed member order). */
    JsonValue toJson() const;

    /** Join key for cross-run matching: the identity members only,
     * so two runs of the same cell compare even when digests moved. */
    std::string identityKey() const;
};

/**
 * Stable comma-joined rendering of the machine axes that key traces
 * and identify cells (the evaluator's cache keys use the same
 * string).
 */
std::string machineIdentity(const MachineConfig &machine);

/**
 * Digest of the exact pass list @p model compiles with under
 * @p ablation (canonicalized): "v1:" + truncated sha256 over the
 * ordered pass names. Changes whenever a pass is added, removed, or
 * reordered — the "compiler changed" leg of drift explanation.
 */
std::string passPipelineDigest(Model model,
                               const AblationFlags &ablation);

/** Store key of @p prov's certified record: sha256 over the schema
 * tag and the canonical provenance dump. */
std::string certifiedResultKey(const CellProvenance &prov);

/**
 * The deterministic figures of one priced cell: the replay's
 * headline counters plus every counter in its stats snapshot.
 * Timers are excluded — figures must be byte-identical across
 * identical runs or the drift gate could never hold.
 */
JsonValue certifiedFigures(const SimResult &sim);

/** The full (unsealed) certified record for one priced cell:
 * { schema, provenance, figures }. Seal and publish via
 * ArtifactStore::saveResult. */
JsonValue certifiedRecord(const CellProvenance &prov,
                          const SimResult &sim);

} // namespace predilp

#endif // PREDILP_DRIVER_CERTIFIED_HH
