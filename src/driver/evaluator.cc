#include "driver/evaluator.hh"

#include <sstream>
#include <unordered_set>

#include "driver/certified.hh"
#include "driver/reproducer.hh"
#include "store/sha256.hh"
#include "support/env.hh"
#include "support/faultpoint.hh"
#include "support/logging.hh"

namespace predilp
{

namespace
{

CompileOptions
makeCompileOptions(const EvalRequest &request, Model model,
                   const MachineConfig &machine,
                   const std::string &input, bool verifyEachPass)
{
    CompileOptions opts;
    opts.model = model;
    opts.machine = machine;
    opts.profileInput = input;
    opts.ablation = request.ablation;
    opts.verifyEachPass = verifyEachPass;
    return opts;
}

std::string
machineKey(const MachineConfig &m)
{
    // Shared with the certified records' machine identity so a cell
    // in the store and a cell in a cache key name the same machine
    // by the same string.
    return machineIdentity(m);
}

/**
 * Ablation flags that can affect @p model's compilation, in
 * canonical form (AblationFlags::canonicalFor pins flags the
 * pipeline ignores for a model to their defaults), so e.g. a
 * no-or-tree sweep reuses the Superblock and Full Predication traces
 * of the default configuration.
 */
std::string
flagsKey(const EvalRequest &request, Model model)
{
    return request.ablation.canonicalFor(model).key();
}

/**
 * Identity of a compiled program: everything traceKey() hashes
 * except the capture fuel, which decoding never reads. Keys the
 * decoded-program cache.
 *
 * Deliberately machine-only (not the full SimConfig digest): traces
 * depend on what the scheduler emitted and how far emulation ran,
 * never on cache or BTB parameters, so e.g. the real-cache Figure 11
 * replays the perfect-cache Figure 8 traces byte-for-byte.
 */
std::string
decodedKey(const Workload &workload, const EvalRequest &request,
           Model model, const MachineConfig &machine)
{
    std::ostringstream os;
    os << workload.name << "|s" << request.scale << "|m"
       << static_cast<int>(model) << '|' << machineKey(machine)
       << '|' << flagsKey(request, model);
    return os.str();
}

std::string
traceKey(const Workload &workload, const EvalRequest &request,
         Model model, const MachineConfig &machine,
         std::uint64_t fuel)
{
    return decodedKey(workload, request, model, machine) + "|f" +
           std::to_string(fuel);
}

/**
 * Full provenance of one priced cell. A pure function of
 * (workload, request, model, sim), so the BENCH/sweep emitters and
 * the certified records in the store agree on every digest.
 */
CellProvenance
cellProvenance(const Workload &workload, const EvalRequest &request,
               Model model, const SimConfig &sim)
{
    CellProvenance prov;
    prov.workload = workload.name;
    prov.model = modelKey(model);
    prov.scale = request.scale;
    prov.ablation = flagsKey(request, model);
    prov.fuel = sim.maxDynInstrs;
    prov.machine = machineIdentity(sim.machine);
    prov.sourceSha256 = sha256Hex(workload.source);
    prov.pipelineDigest = passPipelineDigest(model, request.ablation);
    prov.configDigest = sim.configDigest();
    prov.traceDigest = ArtifactStore::keyFor(
        workload.source, traceKey(workload, request, model,
                                  sim.machine, sim.maxDynInstrs));
    return prov;
}

/**
 * Publish the certified record for one freshly priced cell.
 * Best-effort like save(): a refusal degrades to a thinner result
 * DB, never a failed evaluation.
 */
void
publishCertified(ArtifactStore *store, const Workload &workload,
                 const EvalRequest &request, Model model,
                 const SimConfig &sim, const SimResult &result)
{
    if (store == nullptr || store->mode() != StoreMode::ReadWrite)
        return;
    CellProvenance prov =
        cellProvenance(workload, request, model, sim);
    store->saveResult(certifiedResultKey(prov),
                      certifiedRecord(prov, result));
}

} // namespace

SuiteEvaluator::SuiteEvaluator(int threads) : pool_(threads)
{
    // Opt-in persistence without code changes, via the one
    // documented reader of PREDILP_STORE / PREDILP_STORE_MODE
    // (EnvConfig). setPolicy can still override both.
    EnvConfig env = EnvConfig::fromEnvironment();
    if (!env.storeDir.empty()) {
        policy_.storeDir = env.storeDir;
        policy_.storeMode = env.storeReadOnly ? StoreMode::ReadOnly
                                              : StoreMode::ReadWrite;
    }
    openStore();
}

void
SuiteEvaluator::setPolicy(EvalPolicy policy)
{
    policy_ = std::move(policy);
    openStore();
}

void
SuiteEvaluator::openStore()
{
    if (policy_.storeMode == StoreMode::Off ||
        policy_.storeDir.empty()) {
        store_.reset();
        return;
    }
    store_ = std::make_unique<ArtifactStore>(policy_.storeDir,
                                             policy_.storeMode);
}

namespace
{

/**
 * Future-based once-per-key cache: the first requester computes
 * inline (so a running pool task never blocks on a queued one);
 * concurrent requesters block on the owner's shared_future.
 * Exceptions propagate to every waiter already attached, but the
 * failed entry is evicted first, so the cache is never poisoned: a
 * later request for the same key recomputes instead of replaying a
 * stale failure forever.
 */
template <typename T, typename Fn>
T
cachedCompute(
    std::mutex &mutex,
    std::unordered_map<std::string, std::shared_future<T>> &cache,
    const std::string &key, std::atomic<std::uint64_t> &hits,
    Fn &&compute)
{
    std::promise<T> promise;
    std::shared_future<T> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find(key);
        if (it == cache.end()) {
            future = promise.get_future().share();
            cache.emplace(key, future);
            owner = true;
        } else {
            future = it->second;
            hits.fetch_add(1, std::memory_order_relaxed);
        }
    }
    if (owner) {
        try {
            promise.set_value(compute());
        } catch (...) {
            // Evict before publishing the failure: waiters holding
            // this future still observe the exception, but the key
            // is free for a clean retry.
            {
                std::lock_guard<std::mutex> lock(mutex);
                cache.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

} // namespace

SuiteEvaluator::SnapshotPtr
SuiteEvaluator::snapshotFor(const Workload &workload,
                            const std::string &input, int scale,
                            std::uint64_t profileFuel)
{
    std::string key =
        workload.name + "|prefix|s" + std::to_string(scale);
    return cachedCompute(
        mutex_, snapshots_, key, prefixCacheHits_,
        [&]() -> SnapshotPtr {
            PhaseTimer timer(compileTime_);
            StatsRegistry perPrefix;
            auto snapshot = std::make_shared<FrontendSnapshot>(
                compilePrefix(workload.source, input, profileFuel,
                              &perPrefix, policy_.verifyEachPass));
            compileStats_.merge(perPrefix);
            prefixCompiles_.fetch_add(1,
                                      std::memory_order_relaxed);
            return snapshot;
        });
}

RunResult
SuiteEvaluator::referenceFor(const Workload &workload,
                             const std::string &input, int scale)
{
    std::string key =
        workload.name + "|ref|s" + std::to_string(scale);
    return cachedCompute(
        mutex_, references_, key, referenceCacheHits_, [&] {
            PhaseTimer timer(captureTime_);
            captures_.fetch_add(1, std::memory_order_relaxed);
            RunResult ref = runReference(workload.source, input);
            auto &records =
                defaultEmuBackend() == EmuBackend::Threaded
                    ? threadedRecords_
                    : interpRecords_;
            records.fetch_add(ref.dynInstrs,
                              std::memory_order_relaxed);
            return ref;
        });
}

SuiteEvaluator::DecodedPtr
SuiteEvaluator::decodedFor(const Program &prog,
                           const std::string &key)
{
    return cachedCompute(
        mutex_, decoded_, key, decodedCacheHits_,
        [&]() -> DecodedPtr {
            PhaseTimer timer(decodeTime_);
            auto dp = std::make_shared<DecodedProgram>(prog);
            decodes_.fetch_add(1, std::memory_order_relaxed);
            decodedBytes_.fetch_add(dp->memoryBytes(),
                                    std::memory_order_relaxed);
            return dp;
        });
}

SuiteEvaluator::TracePtr
SuiteEvaluator::traceFor(const Workload &workload,
                         const EvalRequest &request, Model model,
                         const MachineConfig &machine,
                         const std::string &input,
                         std::uint64_t fuel,
                         const std::string &key)
{
    return cachedCompute(
        mutex_, traces_, key, traceCacheHits_, [&]() -> TracePtr {
            // Second tier: the persistent artifact store. A hit
            // skips compile, capture, and the reference-divergence
            // check entirely — artifacts were verified against the
            // oracle before they were published, and the checksum
            // guards the bytes — so warm runs pay zero emulation.
            std::string storeKey;
            if (store_ != nullptr) {
                storeKey =
                    ArtifactStore::keyFor(workload.source, key);
                if (TracePtr fromDisk = store_->load(storeKey))
                    return fromDisk;
            }
            CompileOptions opts =
                makeCompileOptions(request, model, machine, input,
                                   policy_.verifyEachPass);
            // All models of a cell resume from one shared
            // front-end snapshot; only the model-specific pass
            // suffix runs per compile.
            SnapshotPtr snapshot =
                snapshotFor(workload, input, request.scale,
                            opts.maxProfileInstrs);
            std::unique_ptr<Program> prog;
            {
                PhaseTimer timer(compileTime_);
                FAULT_POINT("eval.compile");
                // Each compile records into its own registry (the
                // worker owns it, unsynchronized); the additive
                // merge below makes the aggregate independent of
                // thread count and completion order.
                StatsRegistry perCompile;
                prog = compileFromSnapshot(*snapshot, opts,
                                           &perCompile);
                compileStats_.merge(perCompile);
                compiles_.fetch_add(1, std::memory_order_relaxed);
            }
            // The threaded backend splits capture into a cached
            // decode (shared across fuel budgets) and the engine
            // run; only the latter counts as emulation time.
            const bool threaded =
                defaultEmuBackend() == EmuBackend::Threaded;
            DecodedPtr decoded;
            if (threaded) {
                decoded = decodedFor(
                    *prog,
                    decodedKey(workload, request, model, machine));
            }
            std::unique_ptr<TraceBuffer> buffer;
            bool capturedThreaded = threaded;
            {
                PhaseTimer timer(captureTime_);
                if (threaded) {
                    try {
                        buffer = captureDecoded(*decoded, input,
                                                fuel);
                    } catch (const Error &e) {
                        // Degradation ladder, rung 1: a trap in the
                        // threaded engine retries on the interpreter
                        // oracle — slower, architecturally
                        // identical, so the published trace (and
                        // every cell priced from it) is unchanged.
                        warn(detail::formatMessage(
                            "threaded capture failed for ",
                            workload.name, " (",
                            classifyException(
                                std::current_exception()),
                            ": ", e.what(),
                            "); retrying on the interpreter"));
                        backendFallbacks_.fetch_add(
                            1, std::memory_order_relaxed);
                        capturedThreaded = false;
                        buffer = capture(*prog, input, fuel,
                                         EmuBackend::Interp);
                    }
                } else {
                    buffer = capture(*prog, input, fuel,
                                     EmuBackend::Interp);
                }
                captures_.fetch_add(1, std::memory_order_relaxed);
            }
            auto &backendRecords =
                capturedThreaded ? threadedRecords_ : interpRecords_;
            backendRecords.fetch_add(buffer->size(),
                                     std::memory_order_relaxed);
            RunResult reference = referenceFor(
                workload, input, request.scale);
            const RunResult &run = buffer->run();
            if (run.output != reference.output ||
                run.exitValue != reference.exitValue ||
                run.memHash != reference.memHash) {
                throw DivergenceError(detail::formatMessage(
                    modelName(model), " diverged from reference on ",
                    workload.name, ": exit ", run.exitValue, " vs ",
                    reference.exitValue, ", output ",
                    run.output.size(), " vs ",
                    reference.output.size(), " bytes",
                    run.output == reference.output ? " (equal)"
                                                   : " (differ)",
                    ", memHash ", run.memHash, " vs ",
                    reference.memHash));
            }
            if (store_ != nullptr) {
                // Human/tooling-facing provenance sidecar: where
                // this artifact came from and under which config it
                // was first captured (the trace itself is shared by
                // every config with the same machine and fuel).
                SimConfig captureSim = request.sim;
                captureSim.machine = machine;
                JsonValue prov = JsonValue::makeObject({
                    {"format_version",
                     JsonValue::makeInt(ArtifactStore::formatVersion)},
                    {"store_key", JsonValue::makeString(storeKey)},
                    {"cell_key", JsonValue::makeString(key)},
                    {"workload",
                     JsonValue::makeString(workload.name)},
                    {"model", JsonValue::makeString(modelKey(model))},
                    {"scale", JsonValue::makeInt(request.scale)},
                    {"ablation",
                     JsonValue::makeString(flagsKey(request, model))},
                    {"fuel", JsonValue::makeInt(
                                 static_cast<std::int64_t>(fuel))},
                    {"emu_backend",
                     JsonValue::makeString(
                         emuBackendName(defaultEmuBackend()))},
                    {"config_digest",
                     JsonValue::makeString(
                         captureSim.configDigest())},
                    {"source_sha256",
                     JsonValue::makeString(
                         sha256Hex(workload.source))},
                    {"pipeline_digest",
                     JsonValue::makeString(passPipelineDigest(
                         model, request.ablation))},
                    {"records",
                     JsonValue::makeInt(static_cast<std::int64_t>(
                         buffer->size()))},
                });
                store_->save(storeKey, *buffer, prov.dump() + "\n");
            }
            std::uint64_t bytes = buffer->memoryBytes();
            capturedBytes_.fetch_add(bytes,
                                     std::memory_order_relaxed);
            capturedRecords_.fetch_add(
                buffer->size(), std::memory_order_relaxed);
            std::uint64_t resident =
                traceBytes_.fetch_add(bytes,
                                      std::memory_order_relaxed) +
                bytes;
            std::uint64_t peak =
                tracePeakBytes_.load(std::memory_order_relaxed);
            while (resident > peak &&
                   !tracePeakBytes_.compare_exchange_weak(
                       peak, resident, std::memory_order_relaxed)) {
            }
            return TracePtr(std::move(buffer));
        });
}

SimResult
SuiteEvaluator::cellResult(const Workload &workload,
                           const EvalRequest &request, Model model,
                           const MachineConfig &machine,
                           const SimConfig &sim,
                           const std::string &input)
{
    std::string tkey = traceKey(workload, request, model, machine,
                                sim.maxDynInstrs);
    // The priced-result key extends the trace identity with the full
    // SimConfig digest: any config axis (cache geometry, BTB shape,
    // predictor, penalties) forces a fresh replay, while the trace
    // above is still shared.
    std::string rkey = tkey + "##" + sim.configDigest();
    return cachedCompute(
        mutex_, results_, rkey, resultCacheHits_, [&] {
            TracePtr trace =
                traceFor(workload, request, model, machine, input,
                         sim.maxDynInstrs, tkey);
            FAULT_POINT("eval.replay");
            SimResult priced;
            {
                PhaseTimer timer(replayTime_);
                replays_.fetch_add(1, std::memory_order_relaxed);
                replayedRecords_.fetch_add(
                    trace->size(), std::memory_order_relaxed);
                priced = replay(*trace, sim);
            }
            publishCertified(store_.get(), workload, request, model,
                             sim, priced);
            return priced;
        });
}

BenchmarkResult
SuiteEvaluator::evaluateCells(const Workload &workload,
                              const EvalRequest &request)
{
    BenchmarkResult result;
    result.name = workload.name;
    const std::vector<Model> models = request.effectiveModels();
    std::string input = workload.makeInput(
        workload.defaultScale * request.scale);

    // Cell 0: the 1-issue Superblock baseline denominator (paper
    // §4.1), sharing every non-machine axis of the request's config;
    // cells 1..n: the requested models at the request's machine.
    std::vector<SimResult> cells(models.size() + 1);
    std::vector<CellError> errors;
    std::mutex errorMutex;
    pool_.parallelFor(models.size() + 1, [&](std::size_t i) {
        const bool baseline = i == 0;
        const Model model =
            baseline ? Model::Superblock : models[i - 1];
        SimConfig sim = request.sim;
        if (baseline)
            sim.machine = issue1();
        try {
            cells[i] = cellResult(workload, request, model,
                                  sim.machine, sim, input);
        } catch (...) {
            // Strict policy: let the pool rethrow the first failure.
            if (!policy_.isolateFaults)
                throw;
            // Isolated policy: degrade this cell to a structured
            // error record (plus a reproducer file when configured)
            // and let the rest of the suite complete.
            std::exception_ptr ep = std::current_exception();
            CellError error;
            error.workload = workload.name;
            error.model = modelName(model);
            error.baseline = baseline;
            error.kind = classifyException(ep);
            try {
                std::rethrow_exception(ep);
            } catch (const std::exception &e) {
                error.message = e.what();
            } catch (...) {
                error.message = "non-standard exception";
            }
            if (!policy_.reproducerDir.empty()) {
                ReproducerSpec spec;
                spec.title = workload.name + "-" + error.model +
                             (baseline ? "-base" : "");
                spec.model = error.model;
                spec.ablation = request.ablation;
                spec.scale = request.scale;
                spec.kind = error.kind;
                spec.message = error.message;
                spec.input = input;
                spec.source = workload.source;
                error.reproducerPath =
                    writeReproducer(policy_.reproducerDir, spec);
            }
            std::lock_guard<std::mutex> lock(errorMutex);
            errors.push_back(std::move(error));
        }
    });

    result.baseCycles = cells[0].cycles;
    for (std::size_t i = 0; i < models.size(); ++i) {
        result.models[models[i]] = std::move(cells[i + 1]);
        result.provenance[models[i]] =
            cellProvenance(workload, request, models[i],
                           request.sim);
    }
    result.errors = std::move(errors);
    return result;
}

EvalResponse
SuiteEvaluator::evaluate(const EvalRequest &request)
{
    std::vector<const Workload *> selected;
    if (request.workloads.empty()) {
        for (const Workload &workload : allWorkloads())
            selected.push_back(&workload);
    } else {
        for (const std::string &name : request.workloads) {
            const Workload *workload = findWorkload(name);
            if (workload == nullptr)
                throw FatalError("unknown workload '" + name + "'");
            selected.push_back(workload);
        }
    }
    EvalResponse response;
    response.requestDigest = request.requestDigest();
    response.results.resize(selected.size());
    pool_.parallelFor(selected.size(), [&](std::size_t i) {
        response.results[i] = evaluateCells(*selected[i], request);
    });
    return response;
}

void
SuiteEvaluator::seedResult(const std::string &rkey, SimResult result)
{
    std::promise<SimResult> promise;
    std::shared_future<SimResult> future =
        promise.get_future().share();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Never overwrite: a concurrent evaluate() may already own
        // (or have finished) this key; its value is equally valid.
        if (!results_.emplace(rkey, future).second)
            return;
    }
    promise.set_value(std::move(result));
}

std::vector<EvalResponse>
SuiteEvaluator::evaluateBatch(const std::vector<EvalRequest> &requests)
{
    /**
     * One trace's worth of pending work: every not-yet-priced
     * SimConfig whose cell maps to the same trace key, plus the
     * identity needed to produce that trace. Configs within a group
     * differ only in non-machine axes (or belong to different
     * requests sharing a machine) — trace keys are machine-only.
     */
    struct BatchGroup
    {
        const Workload *workload = nullptr;
        const EvalRequest *request = nullptr;
        Model model = Model::Superblock;
        MachineConfig machine;
        std::string input;
        std::string tkey;
        std::vector<std::string> rkeys;
        std::vector<SimConfig> configs;
    };

    // --- plan: enumerate cells, dedup by result key, group by
    // trace key (deterministic first-appearance order) ---
    std::vector<BatchGroup> groups;
    std::unordered_map<std::string, std::size_t> groupIndex;
    std::unordered_set<std::string> plannedRkeys;
    for (const EvalRequest &request : requests) {
        std::vector<const Workload *> selected;
        if (request.workloads.empty()) {
            for (const Workload &workload : allWorkloads())
                selected.push_back(&workload);
        } else {
            for (const std::string &name : request.workloads) {
                // Unknown names throw from the assembly-phase
                // evaluate() below, where the error is attributable
                // to its request; the planner just skips them.
                if (const Workload *workload = findWorkload(name))
                    selected.push_back(workload);
            }
        }
        const std::vector<Model> models = request.effectiveModels();
        for (const Workload *workload : selected) {
            std::string input = workload->makeInput(
                workload->defaultScale * request.scale);
            for (std::size_t i = 0; i < models.size() + 1; ++i) {
                const bool baseline = i == 0;
                const Model model =
                    baseline ? Model::Superblock : models[i - 1];
                SimConfig sim = request.sim;
                if (baseline)
                    sim.machine = issue1();
                std::string tkey =
                    traceKey(*workload, request, model, sim.machine,
                             sim.maxDynInstrs);
                std::string rkey = tkey + "##" + sim.configDigest();
                if (!plannedRkeys.insert(rkey).second)
                    continue;
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    if (results_.find(rkey) != results_.end())
                        continue;
                }
                auto [it, inserted] =
                    groupIndex.emplace(tkey, groups.size());
                if (inserted) {
                    groups.push_back(BatchGroup{
                        workload, &request, model, sim.machine,
                        input, std::move(tkey), {}, {}});
                }
                BatchGroup &group = groups[it->second];
                group.rkeys.push_back(std::move(rkey));
                group.configs.push_back(sim);
            }
        }
    }

    // --- execute: trace-major batch passes. Each group maps its
    // trace once and prices every pending config against it. ---
    auto runGroup = [&](const BatchGroup &group,
                        ThreadPool *lanePool) {
        try {
            FAULT_POINT("eval.replay.batch");
            TracePtr trace = traceFor(
                *group.workload, *group.request, group.model,
                group.machine, group.input,
                group.configs.front().maxDynInstrs, group.tkey);
            std::vector<SimResult> priced;
            {
                PhaseTimer timer(replayTime_);
                priced = replayBatch(*trace, group.configs, lanePool);
            }
            replays_.fetch_add(priced.size(),
                               std::memory_order_relaxed);
            replayedRecords_.fetch_add(trace->size() * priced.size(),
                                       std::memory_order_relaxed);
            for (std::size_t i = 0; i < priced.size(); ++i) {
                // Batched cells certify exactly like unbatched ones:
                // the record's provenance comes from the config that
                // keyed the cell, not from the group.
                publishCertified(store_.get(), *group.workload,
                                 *group.request, group.model,
                                 group.configs[i], priced[i]);
                seedResult(group.rkeys[i], std::move(priced[i]));
            }
        } catch (...) {
            // Degradation ladder, rung 2: leave the group unseeded.
            // The assembly pass below recomputes these cells
            // sequentially through cellResult() and applies the
            // failure policy (strict rethrow or CellError isolation)
            // exactly as the unbatched path would. Counted and
            // warned so a batch that silently lost its amortization
            // is visible in the merged timing.
            batchFallbacks_.fetch_add(1, std::memory_order_relaxed);
            warn(detail::formatMessage(
                "batch group for trace '", group.tkey, "' failed (",
                classifyException(std::current_exception()),
                "); falling back to sequential recompute"));
        }
    };
    if (groups.size() == 1) {
        // A single trace group: parallelism comes from spreading
        // the batch's lanes across the pool instead.
        runGroup(groups.front(), &pool_);
    } else {
        pool_.parallelFor(groups.size(), [&](std::size_t i) {
            runGroup(groups[i], nullptr);
        });
    }

    // --- assemble: through THE entry point, so ordering, fault
    // isolation, and response shape are exactly evaluate()'s; every
    // seeded cell is a result-cache hit. ---
    std::vector<EvalResponse> responses;
    responses.reserve(requests.size());
    for (const EvalRequest &request : requests)
        responses.push_back(evaluate(request));
    return responses;
}

void
SuiteEvaluator::releaseTraces()
{
    std::lock_guard<std::mutex> lock(mutex_);
    traces_.clear();
    traceBytes_.store(0, std::memory_order_relaxed);
}

StatsSnapshot
SuiteEvaluator::compileStats() const
{
    return compileStats_.snapshot();
}

BenchTiming
SuiteEvaluator::timing() const
{
    BenchTiming timing;
    timing.compileSeconds = compileTime_.seconds();
    timing.captureSeconds = captureTime_.seconds();
    timing.replaySeconds = replayTime_.seconds();
    timing.compiles = compiles_.load(std::memory_order_relaxed);
    timing.prefixCompiles =
        prefixCompiles_.load(std::memory_order_relaxed);
    timing.prefixCacheHits =
        prefixCacheHits_.load(std::memory_order_relaxed);
    timing.captures = captures_.load(std::memory_order_relaxed);
    timing.replays = replays_.load(std::memory_order_relaxed);
    timing.traceCacheHits =
        traceCacheHits_.load(std::memory_order_relaxed);
    timing.resultCacheHits =
        resultCacheHits_.load(std::memory_order_relaxed);
    timing.traceBytes =
        traceBytes_.load(std::memory_order_relaxed);
    timing.tracePeakBytes =
        tracePeakBytes_.load(std::memory_order_relaxed);
    timing.capturedBytes =
        capturedBytes_.load(std::memory_order_relaxed);
    timing.capturedRecords =
        capturedRecords_.load(std::memory_order_relaxed);
    timing.replayedRecords =
        replayedRecords_.load(std::memory_order_relaxed);
    timing.decodeSeconds = decodeTime_.seconds();
    timing.decodes = decodes_.load(std::memory_order_relaxed);
    timing.decodedCacheHits =
        decodedCacheHits_.load(std::memory_order_relaxed);
    timing.decodedBytes =
        decodedBytes_.load(std::memory_order_relaxed);
    timing.threadedRecords =
        threadedRecords_.load(std::memory_order_relaxed);
    timing.interpRecords =
        interpRecords_.load(std::memory_order_relaxed);
    timing.backendFallbacks =
        backendFallbacks_.load(std::memory_order_relaxed);
    timing.batchFallbacks =
        batchFallbacks_.load(std::memory_order_relaxed);
    if (store_ != nullptr) {
        timing.storeHits = store_->hits();
        timing.storeMisses = store_->misses();
        timing.storeRepairs = store_->repairs();
        timing.storeWrites = store_->writes();
        timing.storeBytesMapped = store_->bytesMapped();
    }
    return timing;
}

} // namespace predilp
