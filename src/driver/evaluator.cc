#include "driver/evaluator.hh"

#include <sstream>

#include "support/logging.hh"

namespace predilp
{

namespace
{

CompileOptions
makeCompileOptions(const SuiteConfig &config, Model model,
                   const MachineConfig &machine,
                   const std::string &input)
{
    CompileOptions opts;
    opts.model = model;
    opts.machine = machine;
    opts.profileInput = input;
    opts.ablation = config.ablation;
    return opts;
}

std::string
machineKey(const MachineConfig &m)
{
    std::ostringstream os;
    os << m.issueWidth << ',' << m.branchesPerCycle << ','
       << m.mispredictPenalty << ',' << m.latIntAlu << ','
       << m.latIntMul << ',' << m.latIntDiv << ',' << m.latFpAlu
       << ',' << m.latFpDiv << ',' << m.latLoad << ',' << m.latStore
       << ',' << m.latBranch << ',' << m.latPredDefine;
    return os.str();
}

/**
 * Ablation flags that can affect @p model's compilation, in
 * canonical form (AblationFlags::canonicalFor pins flags the
 * pipeline ignores for a model to their defaults), so e.g. a
 * no-or-tree sweep reuses the Superblock and Full Predication traces
 * of the default configuration.
 */
std::string
flagsKey(const SuiteConfig &config, Model model)
{
    return config.ablation.canonicalFor(model).key();
}

std::string
traceKey(const Workload &workload, const SuiteConfig &config,
         Model model, const MachineConfig &machine,
         std::uint64_t fuel)
{
    std::ostringstream os;
    os << workload.name << "|s" << config.scaleMultiplier << "|m"
       << static_cast<int>(model) << '|' << machineKey(machine)
       << '|' << flagsKey(config, model) << "|f" << fuel;
    return os.str();
}

std::string
simKey(const SimConfig &sim)
{
    std::ostringstream os;
    os << machineKey(sim.machine) << "|pc" << sim.perfectCaches
       << "|cs" << sim.cacheSizeBytes << "|cl" << sim.cacheLineBytes
       << "|mp" << sim.cacheMissPenalty << "|btb" << sim.btbEntries;
    return os.str();
}

} // namespace

SuiteEvaluator::SuiteEvaluator(int threads) : pool_(threads) {}

namespace
{

/**
 * Future-based once-per-key cache: the first requester computes
 * inline (so a running pool task never blocks on a queued one);
 * concurrent requesters block on the owner's shared_future.
 * Exceptions propagate to every waiter.
 */
template <typename T, typename Fn>
T
cachedCompute(
    std::mutex &mutex,
    std::unordered_map<std::string, std::shared_future<T>> &cache,
    const std::string &key, std::atomic<std::uint64_t> &hits,
    Fn &&compute)
{
    std::promise<T> promise;
    std::shared_future<T> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find(key);
        if (it == cache.end()) {
            future = promise.get_future().share();
            cache.emplace(key, future);
            owner = true;
        } else {
            future = it->second;
            hits.fetch_add(1, std::memory_order_relaxed);
        }
    }
    if (owner) {
        try {
            promise.set_value(compute());
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

} // namespace

SuiteEvaluator::SnapshotPtr
SuiteEvaluator::snapshotFor(const Workload &workload,
                            const std::string &input, int scale,
                            std::uint64_t profileFuel)
{
    std::string key =
        workload.name + "|prefix|s" + std::to_string(scale);
    return cachedCompute(
        mutex_, snapshots_, key, prefixCacheHits_,
        [&]() -> SnapshotPtr {
            PhaseTimer timer(compileTime_);
            StatsRegistry perPrefix;
            auto snapshot = std::make_shared<FrontendSnapshot>(
                compilePrefix(workload.source, input, profileFuel,
                              &perPrefix));
            compileStats_.merge(perPrefix);
            prefixCompiles_.fetch_add(1,
                                      std::memory_order_relaxed);
            return snapshot;
        });
}

RunResult
SuiteEvaluator::referenceFor(const Workload &workload,
                             const std::string &input, int scale)
{
    std::string key =
        workload.name + "|ref|s" + std::to_string(scale);
    return cachedCompute(
        mutex_, references_, key, referenceCacheHits_, [&] {
            PhaseTimer timer(captureTime_);
            captures_.fetch_add(1, std::memory_order_relaxed);
            return runReference(workload.source, input);
        });
}

SuiteEvaluator::TracePtr
SuiteEvaluator::traceFor(const Workload &workload,
                         const SuiteConfig &config, Model model,
                         const MachineConfig &machine,
                         const std::string &input,
                         std::uint64_t fuel,
                         const std::string &key)
{
    return cachedCompute(
        mutex_, traces_, key, traceCacheHits_, [&]() -> TracePtr {
            CompileOptions opts =
                makeCompileOptions(config, model, machine, input);
            // All models of a cell resume from one shared
            // front-end snapshot; only the model-specific pass
            // suffix runs per compile.
            SnapshotPtr snapshot =
                snapshotFor(workload, input, config.scaleMultiplier,
                            opts.maxProfileInstrs);
            std::unique_ptr<Program> prog;
            {
                PhaseTimer timer(compileTime_);
                // Each compile records into its own registry (the
                // worker owns it, unsynchronized); the additive
                // merge below makes the aggregate independent of
                // thread count and completion order.
                StatsRegistry perCompile;
                prog = compileFromSnapshot(*snapshot, opts,
                                           &perCompile);
                compileStats_.merge(perCompile);
                compiles_.fetch_add(1, std::memory_order_relaxed);
            }
            std::unique_ptr<TraceBuffer> buffer;
            {
                PhaseTimer timer(captureTime_);
                buffer = capture(*prog, input, fuel);
                captures_.fetch_add(1, std::memory_order_relaxed);
            }
            RunResult reference = referenceFor(
                workload, input, config.scaleMultiplier);
            panicIf(buffer->run().output != reference.output,
                    modelName(model), " diverged on ",
                    workload.name);
            std::uint64_t bytes = buffer->memoryBytes();
            capturedBytes_.fetch_add(bytes,
                                     std::memory_order_relaxed);
            capturedRecords_.fetch_add(
                buffer->size(), std::memory_order_relaxed);
            std::uint64_t resident =
                traceBytes_.fetch_add(bytes,
                                      std::memory_order_relaxed) +
                bytes;
            std::uint64_t peak =
                tracePeakBytes_.load(std::memory_order_relaxed);
            while (resident > peak &&
                   !tracePeakBytes_.compare_exchange_weak(
                       peak, resident, std::memory_order_relaxed)) {
            }
            return TracePtr(std::move(buffer));
        });
}

SimResult
SuiteEvaluator::cellResult(const Workload &workload,
                           const SuiteConfig &config, Model model,
                           const MachineConfig &machine,
                           const SimConfig &sim,
                           const std::string &input)
{
    std::string tkey = traceKey(workload, config, model, machine,
                                sim.maxDynInstrs);
    std::string rkey = tkey + "##" + simKey(sim);
    return cachedCompute(
        mutex_, results_, rkey, resultCacheHits_, [&] {
            TracePtr trace =
                traceFor(workload, config, model, machine, input,
                         sim.maxDynInstrs, tkey);
            PhaseTimer timer(replayTime_);
            replays_.fetch_add(1, std::memory_order_relaxed);
            replayedRecords_.fetch_add(
                trace->size(), std::memory_order_relaxed);
            return replay(*trace, sim);
        });
}

BenchmarkResult
SuiteEvaluator::evaluate(const Workload &workload,
                         const SuiteConfig &config)
{
    return evaluate(workload, config,
                    {Model::Superblock, Model::CondMove,
                     Model::FullPred});
}

BenchmarkResult
SuiteEvaluator::evaluate(const Workload &workload,
                         const SuiteConfig &config,
                         const std::vector<Model> &models)
{
    BenchmarkResult result;
    result.name = workload.name;
    std::string input = workload.makeInput(
        workload.defaultScale * config.scaleMultiplier);

    // Cell 0: the 1-issue Superblock baseline denominator (paper
    // §4.1); cells 1..n: the requested models at config.machine.
    std::vector<SimResult> cells(models.size() + 1);
    pool_.parallelFor(models.size() + 1, [&](std::size_t i) {
        SimConfig sim;
        sim.perfectCaches = config.perfectCaches;
        if (i == 0) {
            sim.machine = issue1();
            cells[0] = cellResult(workload, config,
                                  Model::Superblock, sim.machine,
                                  sim, input);
        } else {
            sim.machine = config.machine;
            cells[i] = cellResult(workload, config, models[i - 1],
                                  config.machine, sim, input);
        }
    });

    result.baseCycles = cells[0].cycles;
    for (std::size_t i = 0; i < models.size(); ++i)
        result.models[models[i]] = std::move(cells[i + 1]);
    return result;
}

std::vector<BenchmarkResult>
SuiteEvaluator::evaluateSuite(const SuiteConfig &config)
{
    std::vector<std::string> names;
    for (const Workload &workload : allWorkloads())
        names.push_back(workload.name);
    return evaluateSuite(config, names);
}

std::vector<BenchmarkResult>
SuiteEvaluator::evaluateSuite(
    const SuiteConfig &config,
    const std::vector<std::string> &onlyNames)
{
    std::vector<const Workload *> selected;
    for (const std::string &name : onlyNames) {
        const Workload *workload = findWorkload(name);
        panicIf(workload == nullptr, "unknown workload ", name);
        selected.push_back(workload);
    }
    std::vector<BenchmarkResult> results(selected.size());
    pool_.parallelFor(selected.size(), [&](std::size_t i) {
        results[i] = evaluate(*selected[i], config);
    });
    return results;
}

void
SuiteEvaluator::releaseTraces()
{
    std::lock_guard<std::mutex> lock(mutex_);
    traces_.clear();
    traceBytes_.store(0, std::memory_order_relaxed);
}

StatsSnapshot
SuiteEvaluator::compileStats() const
{
    return compileStats_.snapshot();
}

BenchTiming
SuiteEvaluator::timing() const
{
    BenchTiming timing;
    timing.compileSeconds = compileTime_.seconds();
    timing.captureSeconds = captureTime_.seconds();
    timing.replaySeconds = replayTime_.seconds();
    timing.compiles = compiles_.load(std::memory_order_relaxed);
    timing.prefixCompiles =
        prefixCompiles_.load(std::memory_order_relaxed);
    timing.prefixCacheHits =
        prefixCacheHits_.load(std::memory_order_relaxed);
    timing.captures = captures_.load(std::memory_order_relaxed);
    timing.replays = replays_.load(std::memory_order_relaxed);
    timing.traceCacheHits =
        traceCacheHits_.load(std::memory_order_relaxed);
    timing.resultCacheHits =
        resultCacheHits_.load(std::memory_order_relaxed);
    timing.traceBytes =
        traceBytes_.load(std::memory_order_relaxed);
    timing.tracePeakBytes =
        tracePeakBytes_.load(std::memory_order_relaxed);
    timing.capturedBytes =
        capturedBytes_.load(std::memory_order_relaxed);
    timing.capturedRecords =
        capturedRecords_.load(std::memory_order_relaxed);
    timing.replayedRecords =
        replayedRecords_.load(std::memory_order_relaxed);
    return timing;
}

} // namespace predilp
