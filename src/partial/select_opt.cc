#include <vector>

#include "analysis/cfg.hh"
#include "partial/partial.hh"

namespace predilp
{

namespace
{

bool
readsReg(const Instruction &instr, Reg reg)
{
    std::vector<Reg> uses;
    collectUses(instr, uses);
    for (Reg r : uses) {
        if (r == reg)
            return true;
    }
    return false;
}

bool
writesReg(const Instruction &instr, const Function &fn, Reg reg)
{
    std::vector<Reg> defs;
    collectDefs(instr, fn, defs);
    for (Reg r : defs) {
        if (r == reg)
            return true;
    }
    return false;
}

bool
writesOperand(const Instruction &instr, const Function &fn,
              const Operand &op)
{
    return op.isReg() && writesReg(instr, fn, op.reg());
}

/** Try to fuse the cmov at @p j with a partner above it. */
bool
tryFuse(Function &fn, BasicBlock &bb, std::size_t j)
{
    auto &instrs = bb.instrs();
    Instruction &second = instrs[j];
    bool isFloat = second.op() == Opcode::FCMov ||
                   second.op() == Opcode::FCMovCom;
    bool secondCom = second.op() == Opcode::CMovCom ||
                     second.op() == Opcode::FCMovCom;
    Reg dest = second.dest();
    Operand secondSrc = second.src(0);
    Operand cond = second.src(1);

    // Walk upward looking for the partner; bail if anything between
    // observes dest or rewrites an involved value.
    for (std::size_t step = 1; step <= j; ++step) {
        std::size_t i = j - step;
        Instruction &first = instrs[i];

        bool firstIsCmov = first.info().isCondMove &&
                           first.dest() == dest &&
                           first.srcs().size() == 2 &&
                           first.src(1) == cond;
        bool firstIsMov = (first.op() ==
                           (isFloat ? Opcode::FMov : Opcode::Mov)) &&
                          first.dest() == dest && !first.guarded();

        // The partner's moved value must survive to position j.
        auto partnerValueSurvives = [&](const Operand &value) {
            for (std::size_t k = i + 1; k < j; ++k) {
                if (writesOperand(instrs[k], fn, value))
                    return false;
            }
            return true;
        };

        if (firstIsCmov) {
            bool firstCom = first.op() == Opcode::CMovCom ||
                            first.op() == Opcode::FCMovCom;
            if (firstCom == secondCom)
                return false; // same sense: not a diamond.
            if (!partnerValueSurvives(first.src(0)))
                return false;
            // select d, srcWhenTrue, srcWhenFalse, cond
            Operand whenTrue =
                firstCom ? secondSrc : first.src(0);
            Operand whenFalse =
                firstCom ? first.src(0) : secondSrc;
            Instruction sel = fn.makeInstr(
                isFloat ? Opcode::FSelect : Opcode::Select);
            sel.setDest(dest);
            sel.addSrc(whenTrue);
            sel.addSrc(whenFalse);
            sel.addSrc(cond);
            instrs[j] = std::move(sel);
            instrs.erase(instrs.begin() +
                         static_cast<std::ptrdiff_t>(i));
            return true;
        }
        if (firstIsMov) {
            if (!partnerValueSurvives(first.src(0)))
                return false;
            // mov d, y; ...; cmov d, x, c  ->  select d, x, y, c
            Operand whenTrue =
                secondCom ? first.src(0) : secondSrc;
            Operand whenFalse =
                secondCom ? secondSrc : first.src(0);
            Instruction sel = fn.makeInstr(
                isFloat ? Opcode::FSelect : Opcode::Select);
            sel.setDest(dest);
            sel.addSrc(whenTrue);
            sel.addSrc(whenFalse);
            sel.addSrc(cond);
            instrs[j] = std::move(sel);
            instrs.erase(instrs.begin() +
                         static_cast<std::ptrdiff_t>(i));
            return true;
        }

        // Legality of skipping this instruction.
        if (readsReg(first, dest) || writesReg(first, fn, dest))
            return false;
        if (writesOperand(first, fn, secondSrc) ||
            writesOperand(first, fn, cond)) {
            return false;
        }
        if (first.isControlTransfer() || first.isCall())
            return false;
    }
    return false;
}

} // namespace

int
formSelects(Function &fn)
{
    int formed = 0;
    for (BlockId id : fn.layout()) {
        BasicBlock *bb = fn.block(id);
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t j = 0; j < bb->instrs().size(); ++j) {
                if (!bb->instrs()[j].info().isCondMove)
                    continue;
                if (bb->instrs()[j].guarded())
                    continue;
                if (tryFuse(fn, *bb, j)) {
                    formed += 1;
                    changed = true;
                    break;
                }
            }
        }
    }
    return formed;
}

} // namespace predilp
