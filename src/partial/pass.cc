#include "partial/partial.hh"

namespace predilp
{

namespace
{

class PartialLoweringPass : public Pass
{
  public:
    explicit PartialLoweringPass(PartialOptions opts) : opts_(opts) {}

    std::string name() const override { return "partial.lower"; }

    PassResult
    run(Program &prog, PassContext &ctx) override
    {
        PartialStats stats = lowerToPartial(prog, opts_);
        auto record = [&ctx](const char *leaf, int value) {
            if (value != 0) {
                ctx.stats
                    .counter(std::string("partial.lower.") + leaf)
                    .add(static_cast<std::uint64_t>(value));
            }
        };
        record("pred_defines", stats.predDefinesLowered);
        record("guarded", stats.guardedLowered);
        record("stores_redirected", stats.storesRedirected);
        record("branches", stats.branchesLowered);
        record("or_trees", stats.orTreesRebalanced);
        record("selects", stats.selectsFormed);
        PassResult result;
        result.changes = static_cast<std::uint64_t>(
            stats.predDefinesLowered + stats.guardedLowered +
            stats.storesRedirected + stats.branchesLowered +
            stats.orTreesRebalanced + stats.selectsFormed);
        return result;
    }

  private:
    PartialOptions opts_;
};

} // namespace

std::unique_ptr<Pass>
createPartialLoweringPass(PartialOptions opts)
{
    return std::make_unique<PartialLoweringPass>(opts);
}

} // namespace predilp
