#include <map>
#include <set>
#include <vector>

#include "partial/partial.hh"
#include "support/logging.hh"

namespace predilp
{

namespace
{

class PartialLowerer
{
  public:
    PartialLowerer(Function &fn, const PartialOptions &opts)
        : fn_(fn), opts_(opts)
    {}

    PartialStats
    run()
    {
        for (BlockId id : fn_.layout())
            lowerBlock(*fn_.block(id));
        if (opts_.orTree)
            stats_.orTreesRebalanced = rebalanceReductionTrees(fn_);
        if (opts_.useSelect)
            stats_.selectsFormed = formSelects(fn_);
        return stats_;
    }

  private:
    /** Integer register standing in for predicate register @p pred. */
    Reg
    intOf(Reg pred)
    {
        panicIf(pred.cls() != RegClass::Pred,
                "intOf on non-predicate register");
        auto it = predMap_.find(pred);
        if (it != predMap_.end())
            return it->second;
        Reg reg = fn_.newIntReg();
        predMap_[pred] = reg;
        return reg;
    }

    Instruction
    make(Opcode op)
    {
        return fn_.makeInstr(op);
    }

    void
    emit(std::vector<Instruction> &out, Instruction instr)
    {
        out.push_back(std::move(instr));
    }

    /** dest := op(a, b), fresh id. A None @p b is omitted (movs). */
    void
    emitOp(std::vector<Instruction> &out, Opcode op, Reg dest,
           Operand a, Operand b = Operand())
    {
        Instruction instr = make(op);
        instr.setDest(dest);
        instr.addSrc(a);
        if (!b.isNone())
            instr.addSrc(b);
        out.push_back(std::move(instr));
    }

    void
    emitCMov(std::vector<Instruction> &out, Opcode op, Reg dest,
             Operand src, Operand cond)
    {
        Instruction instr = make(op);
        instr.setDest(dest);
        instr.addSrc(src);
        instr.addSrc(cond);
        out.push_back(std::move(instr));
    }

    /**
     * Which predicate registers need an explicit 0/1 initialization
     * when lowering a pred_clear/pred_set at position @p pos: those
     * whose lowered value is read (as guard, Pin, or OR-family
     * merge) before being rewritten by a U-type define.
     */
    std::set<Reg>
    initSet(const BasicBlock &bb, std::size_t pos) const
    {
        std::set<Reg> needInit;
        std::set<Reg> written;
        const auto &instrs = bb.instrs();
        for (std::size_t i = pos + 1; i < instrs.size(); ++i) {
            const Instruction &instr = instrs[i];
            auto read = [&](Reg reg) {
                if (reg.valid() && reg.cls() == RegClass::Pred &&
                    written.count(reg) == 0) {
                    needInit.insert(reg);
                }
            };
            read(instr.guard());
            for (const auto &src : instr.srcs()) {
                if (src.isReg())
                    read(src.reg());
            }
            for (const auto &pd : instr.predDests()) {
                if (pd.type == PredType::U ||
                    pd.type == PredType::UBar) {
                    written.insert(pd.reg);
                } else {
                    read(pd.reg); // OR/AND merge reads old value.
                }
            }
            if (instr.isPredAll())
                break; // next clear/set re-initializes.
        }
        return needInit;
    }

    /** Lower one predicate define instruction (Figure 3). */
    void
    lowerPredDefine(std::vector<Instruction> &out,
                    const Instruction &def)
    {
        Operand a = def.src(0);
        Operand b = def.src(1);
        Opcode cmpOp = predDefineToCompare(def.op());
        bool guarded = def.guarded();
        Reg pin = guarded ? intOf(def.guard()) : Reg();

        // Detect the constant-true comparison emitted by the
        // if-converter for unconditional path contributions
        // ("pred_eq pX, 0, 0 (q)"): it lowers to pure moves/ors.
        bool constTrue =
            a.isImm() && b.isImm() &&
            evalIntCondition(cmpOp, a.immValue(), b.immValue());
        bool constFalse =
            a.isImm() && b.isImm() &&
            !evalIntCondition(cmpOp, a.immValue(), b.immValue());

        // Shared comparison results, computed lazily.
        Reg cmpReg;
        auto cmp = [&]() {
            if (!cmpReg.valid()) {
                cmpReg = fn_.newIntReg();
                emitOp(out, cmpOp, cmpReg, a, b);
            }
            return Operand(cmpReg);
        };
        Reg cmpInvReg;
        auto cmpInv = [&]() {
            if (!cmpInvReg.valid()) {
                cmpInvReg = fn_.newIntReg();
                emitOp(out, invertCompare(cmpOp), cmpInvReg, a, b);
            }
            return Operand(cmpInvReg);
        };

        for (const auto &pd : def.predDests()) {
            Reg rd = intOf(pd.reg);
            switch (pd.type) {
              case PredType::U:
                if (constTrue) {
                    if (guarded)
                        emitOp(out, Opcode::Mov, rd, Operand(pin),
                               Operand());
                    else
                        emitOp(out, Opcode::Mov, rd,
                               Operand::imm(1), Operand());
                } else if (constFalse) {
                    emitOp(out, Opcode::Mov, rd, Operand::imm(0),
                           Operand());
                } else if (guarded) {
                    emitOp(out, Opcode::And, rd, Operand(pin),
                           cmp());
                } else {
                    emitOp(out, cmpOp, rd, a, b);
                }
                break;
              case PredType::UBar:
                if (constTrue) {
                    emitOp(out, Opcode::Mov, rd, Operand::imm(0),
                           Operand());
                } else if (constFalse) {
                    if (guarded)
                        emitOp(out, Opcode::Mov, rd, Operand(pin),
                               Operand());
                    else
                        emitOp(out, Opcode::Mov, rd,
                               Operand::imm(1), Operand());
                } else if (guarded) {
                    // pin & !cmp; booleans, so and_not works.
                    emitOp(out, Opcode::AndNot, rd, Operand(pin),
                           cmp());
                } else {
                    emitOp(out, invertCompare(cmpOp), rd, a, b);
                }
                break;
              case PredType::Or:
              case PredType::OrBar: {
                bool setWhen = pd.type == PredType::Or ? constTrue
                                                       : constFalse;
                bool neverSet = pd.type == PredType::Or
                                    ? constFalse
                                    : constTrue;
                if (neverSet)
                    break; // unchanged.
                if (setWhen) {
                    if (guarded)
                        emitOp(out, Opcode::Or, rd, Operand(rd),
                               Operand(pin));
                    else
                        emitOp(out, Opcode::Mov, rd,
                               Operand::imm(1), Operand());
                    break;
                }
                Operand term = pd.type == PredType::Or ? cmp()
                                                       : cmpInv();
                if (guarded) {
                    Reg tmp = fn_.newIntReg();
                    emitOp(out, Opcode::And, tmp, Operand(pin),
                           term);
                    emitOp(out, Opcode::Or, rd, Operand(rd),
                           Operand(tmp));
                } else {
                    emitOp(out, Opcode::Or, rd, Operand(rd), term);
                }
                break;
              }
              case PredType::And:
              case PredType::AndBar: {
                // And: clear when pin && !cmp; AndBar: when
                // pin && cmp.
                bool clearWhen = pd.type == PredType::And
                                     ? constFalse
                                     : constTrue;
                bool neverClear = pd.type == PredType::And
                                      ? constTrue
                                      : constFalse;
                if (neverClear)
                    break;
                if (clearWhen) {
                    if (guarded)
                        emitOp(out, Opcode::AndNot, rd, Operand(rd),
                               Operand(pin));
                    else
                        emitOp(out, Opcode::Mov, rd,
                               Operand::imm(0), Operand());
                    break;
                }
                Operand keep = pd.type == PredType::And
                                   ? cmp()
                                   : cmpInv();
                if (guarded) {
                    // rd &= (keep | ~pin). High garbage bits of
                    // or_not are masked by rd's 0/1 value.
                    Reg tmp = fn_.newIntReg();
                    emitOp(out, Opcode::OrNot, tmp, keep,
                           Operand(pin));
                    emitOp(out, Opcode::And, rd, Operand(rd),
                           Operand(tmp));
                } else {
                    emitOp(out, Opcode::And, rd, Operand(rd), keep);
                }
                break;
              }
            }
        }
        stats_.predDefinesLowered += 1;
    }

    /** Lower one guarded non-define instruction. */
    void
    lowerGuarded(std::vector<Instruction> &out, Instruction instr)
    {
        Reg guard = instr.guard();
        Reg cond = intOf(guard);
        instr.clearGuard();

        if (instr.isCondBranch()) {
            // Figure 3: invert the comparison, then branch when
            // inverted-result < guard (i.e. 0 < 1).
            Reg t = fn_.newIntReg();
            emitOp(out, invertCompare(branchToCompare(instr.op())),
                   t, instr.src(0), instr.src(1));
            Instruction br(Opcode::Blt);
            br.setId(instr.id());
            br.addSrc(Operand(t));
            br.addSrc(Operand(cond));
            br.setTarget(instr.target());
            out.push_back(std::move(br));
            stats_.branchesLowered += 1;
            return;
        }
        if (instr.isJump()) {
            Instruction br(Opcode::Bne);
            br.setId(instr.id());
            br.addSrc(Operand(cond));
            br.addSrc(Operand::imm(0));
            br.setTarget(instr.target());
            out.push_back(std::move(br));
            stats_.branchesLowered += 1;
            return;
        }
        if (instr.isStore()) {
            // Figure 3: squashed stores write $safe_addr instead.
            Reg addr = fn_.newIntReg();
            emitOp(out, Opcode::Add, addr, instr.src(0),
                   instr.src(1));
            emitCMov(out, Opcode::CMovCom, addr,
                     Operand::imm(Program::safeAddr), Operand(cond));
            Instruction st(instr.op());
            st.setId(instr.id());
            st.addSrc(Operand(addr));
            st.addSrc(Operand::imm(0));
            st.addSrc(instr.src(2));
            out.push_back(std::move(st));
            stats_.storesRedirected += 1;
            return;
        }

        // Arithmetic / logic / load / conversion with a register
        // destination: rename, speculate, conditionally move.
        panicIf(!instr.dest().valid(),
                "guarded instruction with no destination: ",
                instr.toString());
        bool isFloat = instr.dest().cls() == RegClass::Float;
        Reg origDest = instr.dest();
        Reg temp = isFloat ? fn_.newFloatReg() : fn_.newIntReg();

        if (instr.info().canTrap) {
            if (opts_.nonExcepting) {
                instr.setSpeculative(true);
            } else {
                // Figure 4: replace the faulting source with a safe
                // value when the guard is false.
                if (instr.isLoad()) {
                    Reg addr = fn_.newIntReg();
                    emitOp(out, Opcode::Add, addr, instr.src(0),
                           instr.src(1));
                    emitCMov(out, Opcode::CMovCom, addr,
                             Operand::imm(Program::safeAddr),
                             Operand(cond));
                    instr.setSrc(0, Operand(addr));
                    instr.setSrc(1, Operand::imm(0));
                } else if (instr.op() == Opcode::FDiv) {
                    // Force the float divisor to 1.0 when squashed.
                    Reg divisor = fn_.newFloatReg();
                    emitOp(out, Opcode::FMov, divisor,
                           instr.src(1));
                    emitCMov(out, Opcode::FCMovCom, divisor,
                             Operand::fimm(1.0), Operand(cond));
                    instr.setSrc(1, Operand(divisor));
                } else {
                    // div/rem: force divisor 1 when squashed.
                    Reg divisor = fn_.newIntReg();
                    emitOp(out, Opcode::Mov, divisor, instr.src(1));
                    emitCMov(out, Opcode::CMovCom, divisor,
                             Operand::imm(1), Operand(cond));
                    instr.setSrc(1, Operand(divisor));
                }
            }
        }

        instr.setDest(temp);
        out.push_back(std::move(instr));
        emitCMov(out,
                 isFloat ? Opcode::FCMov : Opcode::CMov, origDest,
                 Operand(temp), Operand(cond));
        stats_.guardedLowered += 1;
    }

    void
    lowerBlock(BasicBlock &bb)
    {
        std::vector<Instruction> out;
        out.reserve(bb.instrs().size());

        for (std::size_t i = 0; i < bb.instrs().size(); ++i) {
            Instruction &instr = bb.instrs()[i];

            // Predicate registers appearing as value operands (the
            // height-reduction pass reads them) become their integer
            // counterparts.
            for (std::size_t s = 0; s < instr.srcs().size(); ++s) {
                const Operand &src = instr.src(s);
                if (src.isReg() &&
                    src.reg().cls() == RegClass::Pred) {
                    instr.setSrc(s, Operand(intOf(src.reg())));
                }
            }

            if (instr.isPredAll()) {
                std::int64_t value =
                    instr.op() == Opcode::PredSet ? 1 : 0;
                for (Reg pred : initSet(bb, i)) {
                    Reg rd = intOf(pred);
                    emitOp(out, Opcode::Mov, rd,
                           Operand::imm(value), Operand());
                }
                continue;
            }
            if (instr.isPredDefine()) {
                lowerPredDefine(out, instr);
                continue;
            }
            if (instr.guarded()) {
                lowerGuarded(out, std::move(instr));
                continue;
            }
            out.push_back(std::move(instr));
        }
        bb.instrs() = std::move(out);
    }

    Function &fn_;
    const PartialOptions &opts_;
    PartialStats stats_;
    std::map<Reg, Reg> predMap_;
};

} // namespace

PartialStats
lowerToPartial(Function &fn, const PartialOptions &opts)
{
    return PartialLowerer(fn, opts).run();
}

PartialStats
lowerToPartial(Program &prog, const PartialOptions &opts)
{
    PartialStats total;
    for (auto &fn : prog.functions()) {
        PartialStats stats = lowerToPartial(*fn, opts);
        total.predDefinesLowered += stats.predDefinesLowered;
        total.guardedLowered += stats.guardedLowered;
        total.storesRedirected += stats.storesRedirected;
        total.branchesLowered += stats.branchesLowered;
        total.orTreesRebalanced += stats.orTreesRebalanced;
        total.selectsFormed += stats.selectsFormed;
    }
    return total;
}

} // namespace predilp
