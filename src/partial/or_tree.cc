#include <vector>

#include "analysis/cfg.hh"
#include "partial/partial.hh"

namespace predilp
{

namespace
{

/** @return true for associative accumulation opcodes we rebalance. */
bool
reducible(Opcode op)
{
    return op == Opcode::Or || op == Opcode::And || op == Opcode::Add;
}

/** One accumulation chain: d = op(d, x1); ...; d = op(d, xk). */
struct Chain
{
    Opcode op = Opcode::Or;
    Reg dest;
    std::vector<std::size_t> positions; ///< instruction indices.
    std::vector<Operand> terms;         ///< the xi operands.
};

/** @return true when @p instr reads or writes @p reg. */
bool
touches(const Instruction &instr, const Function &fn, Reg reg)
{
    std::vector<Reg> regs;
    collectUses(instr, regs);
    for (Reg r : regs) {
        if (r == reg)
            return true;
    }
    regs.clear();
    collectDefs(instr, fn, regs);
    for (Reg r : regs) {
        if (r == reg)
            return true;
    }
    return false;
}

/** Find the maximal chain starting at position @p start. */
Chain
findChain(const Function &fn, const BasicBlock &bb,
          std::size_t start)
{
    Chain chain;
    const auto &instrs = bb.instrs();
    const Instruction &head = instrs[start];
    chain.op = head.op();
    chain.dest = head.dest();
    chain.positions.push_back(start);
    chain.terms.push_back(head.src(1));

    for (std::size_t i = start + 1; i < instrs.size(); ++i) {
        const Instruction &instr = instrs[i];
        if (instr.op() == chain.op && !instr.guarded() &&
            instr.dest() == chain.dest && instr.src(0).isReg() &&
            instr.src(0).reg() == chain.dest) {
            // Another accumulation into the same register. The xi
            // term must not be the accumulator itself.
            if (!(instr.src(1).isReg() &&
                  instr.src(1).reg() == chain.dest)) {
                chain.positions.push_back(i);
                chain.terms.push_back(instr.src(1));
                continue;
            }
        }
        // Control transfers end the chain: accumulations must not
        // migrate across a side exit where the intermediate value
        // could be live.
        if (instr.isControlTransfer() || instr.isCall())
            break;
        // Any other instruction touching the accumulator ends the
        // chain (its intermediate value is observed or clobbered).
        if (touches(instr, fn, chain.dest))
            break;
        // Instructions defining a term used later in the chain also
        // end it (we would reorder the read past the write).
        bool definesTerm = false;
        std::vector<Reg> defs;
        collectDefs(instr, fn, defs);
        for (Reg def : defs) {
            for (const auto &term : chain.terms) {
                if (term.isReg() && term.reg() == def)
                    definesTerm = true;
            }
        }
        (void)definesTerm;
        // A def of an *earlier* term is harmless (we read terms at
        // the original accumulation positions' values only if we
        // keep order) — to stay simple and safe, end the chain when
        // a term register is redefined after its accumulation.
        if (definesTerm)
            break;
    }
    return chain;
}

/**
 * Replace the chain with a balanced reduction placed at the last
 * accumulation position.
 */
void
applyChain(Function &fn, BasicBlock &bb, const Chain &chain)
{
    auto &instrs = bb.instrs();

    // Leaves: the accumulator's incoming value plus every term.
    std::vector<Operand> level;
    level.push_back(Operand(chain.dest));
    for (const auto &term : chain.terms)
        level.push_back(term);

    std::vector<Instruction> tree;
    while (level.size() > 1) {
        std::vector<Operand> next;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
            bool isRoot =
                level.size() == 2; // final combine writes dest.
            Reg out = isRoot ? chain.dest : fn.newIntReg();
            Instruction instr = fn.makeInstr(chain.op);
            instr.setDest(out);
            instr.addSrc(level[i]);
            instr.addSrc(level[i + 1]);
            tree.push_back(std::move(instr));
            next.push_back(Operand(out));
        }
        if (level.size() % 2 == 1)
            next.push_back(level.back());
        level = std::move(next);
    }

    // Remove the old accumulations (back to front), then insert the
    // tree at the position of the last one.
    std::size_t insertAt = chain.positions.back();
    for (auto it = chain.positions.rbegin();
         it != chain.positions.rend(); ++it) {
        instrs.erase(instrs.begin() +
                     static_cast<std::ptrdiff_t>(*it));
    }
    insertAt -= chain.positions.size() - 1;
    instrs.insert(instrs.begin() +
                      static_cast<std::ptrdiff_t>(insertAt),
                  std::make_move_iterator(tree.begin()),
                  std::make_move_iterator(tree.end()));
}

} // namespace

int
rebalanceReductionTrees(Function &fn)
{
    int rebalanced = 0;
    for (BlockId id : fn.layout()) {
        BasicBlock *bb = fn.block(id);
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t i = 0; i < bb->instrs().size(); ++i) {
                const Instruction &instr = bb->instrs()[i];
                if (!reducible(instr.op()) || instr.guarded())
                    continue;
                if (!instr.dest().valid() ||
                    instr.srcs().size() != 2 ||
                    !instr.src(0).isReg() ||
                    instr.src(0).reg() != instr.dest()) {
                    continue;
                }
                Chain chain = findChain(fn, *bb, i);
                if (chain.positions.size() >= 3) {
                    applyChain(fn, *bb, chain);
                    rebalanced += 1;
                    changed = true;
                    break;
                }
            }
        }
    }
    return rebalanced;
}

} // namespace predilp
