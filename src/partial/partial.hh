/**
 * @file
 * Full-to-partial predication lowering (paper §3.2): predicated IR is
 * rewritten so the only conditional instructions are conditional
 * moves (or selects). Predicate registers become ordinary integer
 * registers holding 0/1; predicate defines become compare/logic
 * sequences (Figure 3); guarded instructions become speculative
 * instructions plus a cmov; guarded stores are redirected to
 * $safe_addr when squashed.
 */

#ifndef PREDILP_PARTIAL_PARTIAL_HH
#define PREDILP_PARTIAL_PARTIAL_HH

#include "ir/program.hh"
#include "opt/pass.hh"

namespace predilp
{

/** Lowering options. */
struct PartialOptions
{
    /**
     * The target has non-excepting (silent) instruction forms, as
     * the paper's baseline does (§4.1); conversions use Figure 3.
     * When false, the excepting conversions of Figure 4 are used:
     * potentially faulting sources are replaced via cmov with safe
     * values before the speculative instruction executes.
     */
    bool nonExcepting = true;

    /** Rebalance OR/AND accumulation chains (or-tree, §3.2). */
    bool orTree = true;

    /** Fuse cmov/cmov_com pairs into select instructions (§2.2). */
    bool useSelect = false;
};

/** Lowering statistics. */
struct PartialStats
{
    int predDefinesLowered = 0;
    int guardedLowered = 0;
    int storesRedirected = 0;
    int branchesLowered = 0;
    int orTreesRebalanced = 0;
    int selectsFormed = 0;
};

/**
 * Lower every predicated construct in @p fn to partial-predication
 * form. After this pass the function contains no predicate registers,
 * no guards, and no predicate defines.
 */
PartialStats lowerToPartial(Function &fn,
                            const PartialOptions &opts = {});

/** lowerToPartial over every function. */
PartialStats lowerToPartial(Program &prog,
                            const PartialOptions &opts = {});

/**
 * OR-tree height reduction (paper §3.2): rewrite accumulation chains
 *   d = d | x1; d = d | x2; ... d = d | xk
 * into a balanced reduction tree of depth ceil(log2(k+1)).
 * Also applies to AND and ADD accumulations.
 * @return number of chains rebalanced.
 */
int rebalanceReductionTrees(Function &fn);

/**
 * Select formation: fuse a cmov and a cmov_com (or an unconditional
 * move and a cmov) writing the same destination under the same
 * condition into one select instruction.
 * @return number of selects formed.
 */
int formSelects(Function &fn);

/**
 * "partial.lower": full-to-partial lowering as a Pass. Counters:
 * partial.lower.pred_defines / .guarded / .stores_redirected /
 * .branches / .or_trees / .selects.
 */
std::unique_ptr<Pass>
createPartialLoweringPass(PartialOptions opts = {});

} // namespace predilp

#endif // PREDILP_PARTIAL_PARTIAL_HH
