#include "workloads/workloads.hh"

#include "support/rng.hh"

namespace predilp
{

namespace
{

const char *const words[] = {
    "the",  "of",    "and",   "to",    "in",    "is",   "you",
    "that", "it",    "he",    "was",   "for",   "on",   "are",
    "as",   "with",  "his",   "they",  "at",    "be",   "this",
    "have", "from",  "or",    "one",   "had",   "by",   "word",
    "but",  "not",   "what",  "all",   "were",  "we",   "when",
    "your", "can",   "said",  "there", "use",   "each", "which",
    "she",  "do",    "how",   "their", "if",    "will", "up",
    "other"};
constexpr int numWords = 50;

void
appendWord(std::string &out, Rng &rng)
{
    out += words[rng.nextBelow(numWords)];
}

} // namespace

std::string
makeTextInput(int scale)
{
    Rng rng(0x77c0u);
    std::string out;
    int lines = 160 * scale;
    for (int line = 0; line < lines; ++line) {
        int count = 3 + static_cast<int>(rng.nextBelow(9));
        for (int w = 0; w < count; ++w) {
            if (w > 0)
                out += rng.nextBool(0.12) ? "\t" : " ";
            appendWord(out, rng);
        }
        if (rng.nextBool(0.08))
            out += "   "; // trailing blanks exercise word logic.
        out += "\n";
        if (rng.nextBool(0.05))
            out += "\n"; // empty lines.
    }
    return out;
}

std::string
makeGrepInput(int scale)
{
    Rng rng(0x62e9u);
    std::string out;
    int lines = 220 * scale;
    for (int line = 0; line < lines; ++line) {
        int count = 4 + static_cast<int>(rng.nextBelow(8));
        for (int w = 0; w < count; ++w) {
            if (w > 0)
                out += " ";
            // The pattern "needle" appears on ~2% of lines.
            if (w == 2 && rng.nextBool(0.02))
                out += "needle";
            else
                appendWord(out, rng);
        }
        out += "\n";
    }
    return out;
}

std::string
makeCmpInput(int scale)
{
    Rng rng(0xc3b2u);
    int half = 2600 * scale;
    std::string a;
    a.reserve(static_cast<std::size_t>(half) * 2);
    for (int i = 0; i < half; ++i)
        a.push_back(static_cast<char>('a' + rng.nextBelow(26)));
    std::string b = a;
    // Sprinkle rare differences (~0.5%).
    for (int i = 0; i < half; ++i) {
        if (rng.nextBool(0.005))
            b[static_cast<std::size_t>(i)] =
                static_cast<char>('A' + rng.nextBelow(26));
    }
    return a + b;
}

std::string
makeNumbersInput(int scale)
{
    Rng rng(0x45071u);
    std::string out;
    int count = 480 * scale;
    for (int i = 0; i < count; ++i) {
        out += std::to_string(rng.nextRange(0, 99999));
        out += (i % 8 == 7) ? "\n" : " ";
    }
    out += "\n";
    return out;
}

std::string
makeCompressInput(int scale)
{
    Rng rng(0xc0317u);
    std::string out;
    int length = 5200 * scale;
    // Markov-ish stream over a small alphabet with repeats, so the
    // LZW dictionary actually gets hits.
    int state = 0;
    for (int i = 0; i < length; ++i) {
        if (rng.nextBool(0.7)) {
            state = (state * 7 + 3) % 16;
        } else {
            state = static_cast<int>(rng.nextBelow(16));
        }
        out.push_back(static_cast<char>('a' + state));
    }
    return out;
}

std::string
makeTableInput(int scale)
{
    Rng rng(0xeb707u);
    std::string out;
    int rows = 72 * scale;
    int cols = 24;
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            // 0, 1, or - (don't care), skewed toward cares.
            std::uint64_t v = rng.nextBelow(10);
            out.push_back(v < 4 ? '0' : (v < 8 ? '1' : '-'));
        }
        out += "\n";
    }
    return out;
}

std::string
makeCodeInput(int scale)
{
    Rng rng(0xc0de);
    const char *idents[] = {"define", "foo",   "bar",  "index",
                            "count",  "value", "temp", "size",
                            "OFFSET", "LIMIT", "x",    "y"};
    std::string out;
    int lines = 150 * scale;
    for (int line = 0; line < lines; ++line) {
        if (rng.nextBool(0.18))
            out += "#";
        int tokens = 2 + static_cast<int>(rng.nextBelow(7));
        for (int t = 0; t < tokens; ++t) {
            if (t > 0)
                out += " ";
            std::uint64_t kind = rng.nextBelow(10);
            if (kind < 5) {
                out += idents[rng.nextBelow(12)];
            } else if (kind < 7) {
                out += std::to_string(rng.nextBelow(1000));
            } else if (kind < 8) {
                out += "(";
                out += idents[rng.nextBelow(12)];
                out += ")";
            } else {
                const char *ops[] = {"+", "-", "*", "/", "=", ";",
                                     "{", "}"};
                out += ops[rng.nextBelow(8)];
            }
        }
        out += "\n";
    }
    return out;
}

std::string
makeSignalInput(int scale)
{
    Rng rng(0x51617u);
    std::string out;
    int samples = 3000 * scale;
    for (int i = 0; i < samples; ++i)
        out.push_back(static_cast<char>(rng.nextBelow(256)));
    return out;
}

std::string
makeSheetInput(int scale)
{
    Rng rng(0x5c311u);
    std::string out;
    // Cells: "N <value>" for numbers, "F <a> <op> <b>" for formulas
    // referencing earlier cells; one per line.
    int cells = 180 * scale;
    for (int i = 0; i < cells; ++i) {
        if (i < 4 || rng.nextBool(0.45)) {
            out += "N ";
            out += std::to_string(rng.nextRange(1, 999));
        } else {
            out += "F ";
            out += std::to_string(rng.nextBelow(
                static_cast<std::uint64_t>(i)));
            std::uint64_t op = rng.nextBelow(4);
            out += op == 0 ? " + " : (op == 1 ? " - "
                                      : op == 2 ? " * " : " / ");
            out += std::to_string(rng.nextBelow(
                static_cast<std::uint64_t>(i)));
        }
        out += "\n";
    }
    return out;
}

std::string
makeLispInput(int scale)
{
    Rng rng(0x115bu);
    std::string out;
    // Bytecode: each instruction is one letter + optional operand
    // digit(s); the interpreter loops over the stream `scale` x 40
    // times via a repeat count on the first line.
    out += std::to_string(26 * scale);
    out += "\n";
    int ops = 300;
    for (int i = 0; i < ops; ++i) {
        std::uint64_t kind = rng.nextBelow(16);
        if (kind < 5) {
            out += "p"; // push literal
            out += std::to_string(rng.nextBelow(100));
        } else if (kind < 8) {
            out += "a"; // add
        } else if (kind < 10) {
            out += "s"; // sub
        } else if (kind < 11) {
            out += "m"; // mul
        } else if (kind < 12) {
            out += "d"; // dup
        } else if (kind < 14) {
            out += "l"; // load slot
            out += std::to_string(rng.nextBelow(8));
        } else {
            out += "t"; // store slot
            out += std::to_string(rng.nextBelow(8));
        }
        out += ";";
    }
    out += "\n";
    return out;
}

} // namespace predilp
