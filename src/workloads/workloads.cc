#include "workloads/workloads.hh"

#include "support/logging.hh"

namespace predilp
{

namespace
{

/**
 * Shared runtime prelude: buffered input (the hot kernels scan a
 * byte buffer, the way stdio-based C programs do) and decimal
 * output helpers.
 */
const char *const prelude = R"ILC(
byte buf[65536];
int buflen = 0;

int rpos = 0;

void read_all() {
    buflen = readblock(buf, 0, 65536);
    rpos = 0;
}

// stdio-style getchar: the buffer bookkeeping lives in memory, the
// way a FILE's fields do, and the whole thing inlines into the hot
// loops just like the C getc() macro.
int nextch() {
    int p = rpos;
    if (p >= buflen) { return -1; }
    int c = buf[p];
    rpos = p + 1;
    return c;
}

void print_int(int v) {
    if (v < 0) { putc('-'); v = -v; }
    if (v >= 10) { print_int(v / 10); }
    putc('0' + v % 10);
}

void print_intln(int v) { print_int(v); putc('\n'); }
)ILC";

// --- wc: per-character classification, tiny blocks (paper Fig. 5) --

const char *const wcSource = R"ILC(
int main() {
    read_all();
    int lines = 0, words = 0, chars = 0, inword = 0;
    int digits = 0, upper = 0, punct = 0;
    int linelen = 0, maxline = 0;
    int c = nextch();
    while (c >= 0) {
        chars = chars + 1;
        if (c == '\n') {
            lines = lines + 1;
            if (linelen > maxline) { maxline = linelen; }
            linelen = 0;
        } else {
            linelen = linelen + 1;
        }
        if (c >= '0' && c <= '9') { digits = digits + 1; }
        if (c >= 'A' && c <= 'Z') { upper = upper + 1; }
        if (c == ' ' || c == '\n' || c == '\t') {
            inword = 0;
        } else {
            if (inword == 0) { words = words + 1; }
            inword = 1;
        }
        c = nextch();
    }
    if (linelen > maxline) { maxline = linelen; }
    print_intln(lines);
    print_intln(words);
    print_intln(chars);
    print_intln(digits);
    print_intln(upper);
    print_intln(punct);
    print_intln(maxline);
    return 0;
}
)ILC";

// --- grep: scan loop with rarely-taken exits (paper Fig. 6) -------

const char *const grepSource = R"ILC(
byte pat[] = "needle";

int main() {
    read_all();
    int patlen = 6;
    int matches = 0, lines = 0, possum = 0, tries = 0;
    int i = 0;
    while (i < buflen) {
        int found = 0;
        int j = i;
        while (j < buflen && buf[j] != '\n') {
            int c = buf[j];
            if (c >= 'A' && c <= 'Z') { c = c + 32; }
            if (found == 0 && c == pat[0]) {
                tries = tries + 1;
                int k = 1;
                while (k < patlen && j + k < buflen) {
                    int d = buf[j + k];
                    if (d >= 'A' && d <= 'Z') { d = d + 32; }
                    if (d != pat[k]) { break; }
                    k = k + 1;
                }
                if (k == patlen) {
                    found = 1;
                    possum = possum + (j - i);
                }
            }
            j = j + 1;
        }
        if (found != 0) { matches = matches + 1; }
        lines = lines + 1;
        i = j + 1;
    }
    print_intln(matches);
    print_intln(lines);
    print_intln(possum);
    print_intln(tries);
    return 0;
}
)ILC";

// --- cmp: two-stream compare, rare difference branches ------------

const char *const cmpSource = R"ILC(
int main() {
    read_all();
    int half = buflen / 2;
    int p1 = 0, p2 = half;
    int diffs = 0, first = -1, line = 1;
    int difflines = 0, lastdiff = -1;
    while (p1 < half && p2 < buflen) {
        int a = buf[p1];
        int b = buf[p2];
        if (a == '\n') { line = line + 1; }
        if (a != b) {
            diffs = diffs + 1;
            if (first < 0) { first = p1; }
            if (line != lastdiff) {
                difflines = difflines + 1;
                lastdiff = line;
            }
        }
        p1 = p1 + 1;
        p2 = p2 + 1;
    }
    print_intln(diffs);
    print_intln(first);
    print_intln(line);
    print_intln(difflines);
    return 0;
}
)ILC";

// --- qsort: recursive partitioning, data-dependent branches -------

const char *const qsortSource = R"ILC(
int nums[4096];
int count = 0;

void parse() {
    int i = 0;
    while (i < buflen) {
        int c = buf[i];
        if (c >= '0' && c <= '9') {
            int v = 0;
            while (i < buflen && buf[i] >= '0' && buf[i] <= '9') {
                v = v * 10 + (buf[i] - '0');
                i = i + 1;
            }
            if (count < 4096) {
                nums[count] = v;
                count = count + 1;
            }
        } else {
            i = i + 1;
        }
    }
}

void sortrange(int lo, int hi) {
    if (lo >= hi) { return; }
    int pivot = nums[(lo + hi) / 2];
    int i = lo, j = hi;
    while (i <= j) {
        while (nums[i] < pivot) { i = i + 1; }
        while (nums[j] > pivot) { j = j - 1; }
        if (i <= j) {
            int t = nums[i];
            nums[i] = nums[j];
            nums[j] = t;
            i = i + 1;
            j = j - 1;
        }
    }
    sortrange(lo, j);
    sortrange(i, hi);
}

int main() {
    read_all();
    parse();
    if (count > 0) { sortrange(0, count - 1); }
    int sum = 0, sorted = 1;
    int i = 0;
    while (i < count) {
        sum = sum + nums[i] * (i % 7 + 1);
        if (i > 0 && nums[i] < nums[i - 1]) { sorted = 0; }
        i = i + 1;
    }
    print_intln(count);
    print_intln(sum);
    print_intln(sorted);
    return 0;
}
)ILC";

// --- compress: LZW dictionary probe loop ---------------------------

const char *const compressSource = R"ILC(
int hashp[8192];
int hashc[8192];
int hashv[8192];
int bitbuf = 0;
int bitcnt = 0;
int outbytes = 0;
int checksum = 0;

// Emit one 12-bit code into the packed output stream, the way the
// real compress packs codes into bytes.
void emit(int code) {
    bitbuf = ((bitbuf << 12) | code) & 0xFFFFFF;
    bitcnt = bitcnt + 12;
    while (bitcnt >= 8) {
        bitcnt = bitcnt - 8;
        int b = (bitbuf >> bitcnt) & 255;
        checksum = (checksum * 31 + b) & 0xFFFFFF;
        outbytes = outbytes + 1;
    }
}

int main() {
    read_all();
    int i = 0;
    int next = 257;
    int w = 0;
    while (i < buflen) {
        int c = buf[i];
        if (w == 0) {
            w = c + 1;
        } else {
            int h = ((c << 4) ^ w) & 8191;
            int code = 0;
            int probing = 1;
            while (probing) {
                if (hashv[h] == 0) {
                    probing = 0;
                } else if (hashp[h] == w && hashc[h] == c) {
                    code = hashv[h];
                    probing = 0;
                } else {
                    h = (h + 67) & 8191;
                }
            }
            if (code != 0) {
                w = code;
            } else {
                emit(w);
                if (next < 4096) {
                    hashp[h] = w;
                    hashc[h] = c;
                    hashv[h] = next;
                    next = next + 1;
                }
                w = c + 1;
            }
        }
        i = i + 1;
    }
    if (w != 0) { emit(w); }
    print_intln(outbytes);
    print_intln(checksum);
    print_intln(next);
    return 0;
}
)ILC";

// --- eqntott: truth-table row comparison (cmppt kernel) ------------

const char *const eqntottSource = R"ILC(
int tblw[1024];
int rows = 0;
int cols = 0;

void parse() {
    int i = 0, col = 0;
    int word = 0;
    while (i < buflen) {
        int c = buf[i];
        if (c == '\n') {
            if (col > 0) {
                if (cols == 0) { cols = col; }
                if (rows < 1024) { tblw[rows] = word; }
                rows = rows + 1;
            }
            col = 0;
            word = 0;
        } else {
            int v = 2;
            if (c == '0') { v = 0; }
            if (c == '1') { v = 1; }
            word = word | (v << (col * 2));
            col = col + 1;
        }
        i = i + 1;
    }
}

// The eqntott cmppt kernel: lexicographic compare of two packed
// ternary rows, early exit at the first differing position.
int cmppt(int a, int b) {
    int wa = tblw[a];
    int wb = tblw[b];
    int i = 0;
    while (i < cols) {
        int sh = i * 2;
        int va = (wa >> sh) & 3;
        int vb = (wb >> sh) & 3;
        if (va < vb) { return -1; }
        if (va > vb) { return 1; }
        i = i + 1;
    }
    return 0;
}

int main() {
    read_all();
    parse();
    int less = 0, eq = 0, greater = 0;
    int i = 0;
    while (i < rows) {
        int j = i + 1;
        while (j < rows) {
            int r = cmppt(i, j);
            if (r < 0) { less = less + 1; }
            else if (r == 0) { eq = eq + 1; }
            else { greater = greater + 1; }
            j = j + 1;
        }
        i = i + 1;
    }
    print_intln(rows);
    print_intln(less);
    print_intln(eq);
    print_intln(greater);
    return 0;
}
)ILC";

// --- espresso: cube intersection with early-empty exits ------------

const char *const espressoSource = R"ILC(
int tblw[1024];
int rows = 0;
int cols = 0;

void parse() {
    int i = 0, col = 0;
    int word = 0;
    while (i < buflen) {
        int c = buf[i];
        if (c == '\n') {
            if (col > 0) {
                if (cols == 0) { cols = col; }
                if (rows < 1024) { tblw[rows] = word; }
                rows = rows + 1;
            }
            col = 0;
            word = 0;
        } else {
            int v = 3;
            if (c == '0') { v = 1; }
            if (c == '1') { v = 2; }
            word = word | (v << (col * 2));
            col = col + 1;
        }
        i = i + 1;
    }
}

// Cube intersection: empty as soon as one variable intersects to 00.
int intersects(int a, int b) {
    int w = tblw[a] & tblw[b];
    int i = 0;
    while (i < cols) {
        if (((w >> (i * 2)) & 3) == 0) { return 0; }
        i = i + 1;
    }
    return 1;
}

// Cube containment: a covers b when every variable of b fits in a.
int covers(int a, int b) {
    int wa = tblw[a];
    int wb = tblw[b];
    int i = 0;
    while (i < cols) {
        int sh = i * 2;
        int va = (wa >> sh) & 3;
        int vb = (wb >> sh) & 3;
        if ((va & vb) != vb) { return 0; }
        i = i + 1;
    }
    return 1;
}

int main() {
    read_all();
    parse();
    int nonempty = 0, covered = 0, tested = 0;
    int i = 0;
    while (i < rows) {
        int j = i + 1;
        while (j < rows) {
            tested = tested + 1;
            if (intersects(i, j)) {
                nonempty = nonempty + 1;
                if (covers(i, j)) { covered = covered + 1; }
            }
            j = j + 1;
        }
        i = i + 1;
    }
    print_intln(tested);
    print_intln(nonempty);
    print_intln(covered);
    return 0;
}
)ILC";

// --- li: type-dispatched interpreter loop ---------------------------

const char *const liSource = R"ILC(
int ops[2048];
int args[2048];
int codelen = 0;
int repeat = 0;
int stackv[256];
int slots[8];

void parse() {
    int i = 0;
    int v = 0;
    while (i < buflen && buf[i] >= '0' && buf[i] <= '9') {
        v = v * 10 + (buf[i] - '0');
        i = i + 1;
    }
    repeat = v;
    while (i < buflen) {
        int c = buf[i];
        if ((c >= 'a' && c <= 'z') && codelen < 2048) {
            int a = 0;
            i = i + 1;
            while (i < buflen && buf[i] >= '0' && buf[i] <= '9') {
                a = a * 10 + (buf[i] - '0');
                i = i + 1;
            }
            ops[codelen] = c;
            args[codelen] = a;
            codelen = codelen + 1;
        } else {
            i = i + 1;
        }
    }
}

int main() {
    read_all();
    parse();
    int acc = 0;
    int r = 0;
    while (r < repeat) {
        int sp = 0;
        int pc = 0;
        while (pc < codelen) {
            int op = ops[pc];
            int a = args[pc];
            if (op == 'p') {
                if (sp < 255) { stackv[sp] = a + r; sp = sp + 1; }
            } else if (op == 'a') {
                if (sp >= 2) {
                    stackv[sp - 2] = stackv[sp - 2] + stackv[sp - 1];
                    sp = sp - 1;
                }
            } else if (op == 's') {
                if (sp >= 2) {
                    stackv[sp - 2] = stackv[sp - 2] - stackv[sp - 1];
                    sp = sp - 1;
                }
            } else if (op == 'm') {
                if (sp >= 2) {
                    stackv[sp - 2] = (stackv[sp - 2] *
                                      stackv[sp - 1]) % 65521;
                    sp = sp - 1;
                }
            } else if (op == 'd') {
                if (sp >= 1 && sp < 255) {
                    stackv[sp] = stackv[sp - 1];
                    sp = sp + 1;
                }
            } else if (op == 'l') {
                if (sp < 255) { stackv[sp] = slots[a]; sp = sp + 1; }
            } else if (op == 't') {
                if (sp >= 1) {
                    slots[a] = stackv[sp - 1];
                    sp = sp - 1;
                }
            }
            pc = pc + 1;
        }
        if (sp > 0) { acc = acc + stackv[sp - 1] % 10007; }
        r = r + 1;
    }
    int i = 0;
    while (i < 8) { acc = acc + slots[i]; i = i + 1; }
    print_intln(acc % 1000000007);
    return 0;
}
)ILC";

// --- lex: table-driven DFA scanner ----------------------------------

const char *const lexSource = R"ILC(
// States: 0 start, 1 ident, 2 number, 3 operator, 4 other.
// Classes: 0 letter, 1 digit, 2 space, 3 operator, 4 other.
int trans[25] = {
    1, 2, 0, 3, 4,
    1, 1, 0, 3, 4,
    2, 2, 0, 3, 4,
    1, 2, 0, 3, 4,
    4, 4, 0, 4, 4
};
int accept[5] = { 0, 1, 1, 1, 0 };

int main() {
    read_all();
    int tokens = 0, idents = 0, numbers = 0;
    int symsum = 0, maxtok = 0;
    int state = 0, h = 0, len = 0;
    int c = nextch();
    while (c >= 0) {
        int cls = 4;
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            c == '_') {
            cls = 0;
        } else if (c >= '0' && c <= '9') {
            cls = 1;
        } else if (c == ' ' || c == '\t' || c == '\n') {
            cls = 2;
        } else if (c == '+' || c == '-' || c == '*' || c == '/' ||
                   c == '=' || c == ';' || c == '(' || c == ')' ||
                   c == '{' || c == '}') {
            cls = 3;
        }
        int nextstate = trans[state * 5 + cls];
        if (nextstate == state && state != 0) {
            h = (h * 31 + c) & 0xFFFF;
            len = len + 1;
        } else if (nextstate != state) {
            if (accept[state] != 0) {
                tokens = tokens + 1;
                symsum = (symsum + h) & 0xFFFFFF;
                if (len > maxtok) { maxtok = len; }
            }
            if (state == 1) { idents = idents + 1; }
            if (state == 2) { numbers = numbers + 1; }
            h = c & 0xFF;
            len = 1;
        }
        state = nextstate;
        c = nextch();
    }
    if (accept[state] != 0) { tokens = tokens + 1; }
    print_intln(tokens);
    print_intln(idents);
    print_intln(numbers);
    print_intln(symsum);
    print_intln(maxtok);
    return 0;
}
)ILC";

// --- yacc: shift/reduce over a token stream -------------------------

const char *const yaccSource = R"ILC(
int stack[512];
int vals[512];

int main() {
    read_all();
    int sp = 0;
    int shifts = 0, reduces = 0, errors = 0, valsum = 0;
    int c = nextch();
    while (c >= 0) {
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9')) {
            int v = 0;
            while (c >= 0 &&
                   ((c >= 'a' && c <= 'z') ||
                    (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9'))) {
                v = (v * 31 + c) & 0xFFFF;
                c = nextch();
            }
            if (sp < 511) {
                stack[sp] = 1;
                vals[sp] = v;
                sp = sp + 1;
            }
            shifts = shifts + 1;
        } else if (c == '(') {
            if (sp < 511) {
                stack[sp] = 2;
                vals[sp] = 0;
                sp = sp + 1;
            }
            shifts = shifts + 1;
            c = nextch();
        } else if (c == ')') {
            int ok = 0;
            int acc = 0;
            while (sp > 0 && ok == 0) {
                sp = sp - 1;
                if (stack[sp] == 2) { ok = 1; }
                else { acc = (acc * 3 + vals[sp]) & 0xFFFF; }
                reduces = reduces + 1;
            }
            if (ok == 0) { errors = errors + 1; }
            if (sp < 511) {
                stack[sp] = 1;
                vals[sp] = acc;
                sp = sp + 1;
            }
            c = nextch();
        } else if (c == '+' || c == '-' || c == '*' || c == '/' ||
                   c == '=') {
            if (sp >= 2 && stack[sp - 1] == 1 &&
                stack[sp - 2] == 1) {
                vals[sp - 2] = (vals[sp - 2] * 5 +
                                vals[sp - 1] + c) & 0xFFFF;
                sp = sp - 1;
                reduces = reduces + 1;
            }
            c = nextch();
        } else if (c == ';' || c == '\n') {
            while (sp > 0) {
                sp = sp - 1;
                valsum = (valsum + vals[sp]) & 0xFFFFFF;
                reduces = reduces + 1;
            }
            c = nextch();
        } else {
            c = nextch();
        }
    }
    print_intln(shifts);
    print_intln(reduces);
    print_intln(errors);
    print_intln(valsum);
    return 0;
}
)ILC";

// --- cccp: identifier scan + macro table lookups --------------------

const char *const cccpSource = R"ILC(
byte macros[64] = "define OFFSET LIMIT include ifdef endif";
int macstart[6] = { 0, 7, 14, 20, 28, 34 };
int maclen[6] = { 6, 6, 5, 7, 5, 5 };
int machash[6];

void hash_macros() {
    int m = 0;
    while (m < 6) {
        int h = 0;
        int k = 0;
        while (k < maclen[m]) {
            h = (h * 31 + macros[macstart[m] + k]) & 0xFFFF;
            k = k + 1;
        }
        machash[m] = h;
        m = m + 1;
    }
}

int main() {
    read_all();
    hash_macros();
    int idents = 0, expansions = 0, directives = 0, hashhits = 0;
    int c = nextch();
    while (c >= 0) {
        if (c == '#') { directives = directives + 1; }
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            c == '_') {
            int start = rpos - 1;
            int h = 0;
            int len = 0;
            while (c >= 0 &&
                   ((c >= 'a' && c <= 'z') ||
                    (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_')) {
                h = (h * 31 + c) & 0xFFFF;
                len = len + 1;
                c = nextch();
            }
            idents = idents + 1;
            int m = 0;
            while (m < 6) {
                if (machash[m] == h && maclen[m] == len) {
                    hashhits = hashhits + 1;
                    int k = 0;
                    int base = macstart[m];
                    while (k < len &&
                           buf[start + k] == macros[base + k]) {
                        k = k + 1;
                    }
                    if (k == len) {
                        expansions = expansions + 1;
                    }
                }
                m = m + 1;
            }
        } else {
            c = nextch();
        }
    }
    print_intln(idents);
    print_intln(expansions);
    print_intln(directives);
    print_intln(hashhits);
    return 0;
}
)ILC";

// --- eqn: character-class state machine ------------------------------

const char *const eqnSource = R"ILC(
int widths[8] = { 1, 3, 2, 4, 1, 2, 2, 1 };

int main() {
    read_all();
    int mathmode = 0, script = 0;
    int emitted = 0, switches = 0, specials = 0, scripts = 0;
    int c = nextch();
    while (c >= 0) {
        int cls = 7;
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
            cls = 1;
        } else if (c >= '0' && c <= '9') {
            cls = 2;
        } else if (c == '+' || c == '-' || c == '=') {
            cls = 3;
        } else if (c == ' ' || c == '\t') {
            cls = 4;
        } else if (c == '*' || c == '/') {
            cls = 5;
        } else if (c == '{' || c == '}') {
            cls = 6;
        } else if (c == '\n') {
            cls = 0;
        }
        if (c == '(' || c == ')') {
            mathmode = 1 - mathmode;
            switches = switches + 1;
            script = 0;
            emitted = emitted + 2;
        } else if (mathmode != 0) {
            int w = widths[cls];
            if (cls == 5) {
                script = 1 - script;
                scripts = scripts + 1;
            }
            if (script != 0) { w = w - 1; }
            if (cls == 3) { specials = specials + 1; }
            emitted = emitted + w + 1;
        } else {
            emitted = emitted + widths[cls];
            if (cls == 0) { script = 0; }
        }
        c = nextch();
    }
    print_intln(emitted);
    print_intln(switches);
    print_intln(specials);
    print_intln(scripts);
    return 0;
}
)ILC";

// --- sc: spreadsheet cell evaluation ---------------------------------

const char *const scSource = R"ILC(
int celltype[4096];
int cellv1[4096];
int cellv2[4096];
int cellop[4096];
int value[4096];
int ncells = 0;

int readnum(int i) {
    int v = 0;
    while (i < buflen && buf[i] >= '0' && buf[i] <= '9') {
        v = v * 10 + (buf[i] - '0');
        i = i + 1;
    }
    return v;
}

int skipnum(int i) {
    while (i < buflen && buf[i] >= '0' && buf[i] <= '9') {
        i = i + 1;
    }
    return i;
}

void parse() {
    int i = 0;
    while (i < buflen) {
        int c = buf[i];
        if (c == 'N' && ncells < 4096) {
            i = i + 2;
            celltype[ncells] = 0;
            cellv1[ncells] = readnum(i);
            i = skipnum(i);
            ncells = ncells + 1;
        } else if (c == 'F' && ncells < 4096) {
            i = i + 2;
            celltype[ncells] = 1;
            cellv1[ncells] = readnum(i);
            i = skipnum(i);
            i = i + 1;
            cellop[ncells] = buf[i];
            i = i + 2;
            cellv2[ncells] = readnum(i);
            i = skipnum(i);
            ncells = ncells + 1;
        } else {
            i = i + 1;
        }
    }
}

int main() {
    read_all();
    parse();
    int rounds = 40;
    int checksum = 0;
    int r = 0;
    while (r < rounds) {
        int i = 0;
        while (i < ncells) {
            if (celltype[i] == 0) {
                value[i] = cellv1[i] + r;
            } else {
                int a = value[cellv1[i]];
                int b = value[cellv2[i]];
                int op = cellop[i];
                if (op == '+') {
                    value[i] = a + b;
                } else if (op == '-') {
                    value[i] = a - b;
                } else if (op == '*') {
                    value[i] = (a * b) % 100003;
                } else {
                    if (b == 0) { value[i] = 0; }
                    else { value[i] = a / b; }
                }
            }
            i = i + 1;
        }
        checksum = (checksum + value[ncells - 1]) % 1000000007;
        r = r + 1;
    }
    print_intln(ncells);
    print_intln(checksum);
    return 0;
}
)ILC";

// --- alvinn: MLP forward/backward FP loops ---------------------------

const char *const alvinnSource = R"ILC(
float w1[512];
float w2[128];
float inv[32];
float hid[16];
float outv[8];

int main() {
    read_all();
    // Deterministic pseudo-random weights.
    int i = 0;
    int seed = 12345;
    while (i < 512) {
        seed = (seed * 1103515245 + 12345) % 2147483647;
        w1[i] = (seed % 1000) / 1000.0 - 0.5;
        i = i + 1;
    }
    i = 0;
    while (i < 128) {
        seed = (seed * 1103515245 + 12345) % 2147483647;
        w2[i] = (seed % 1000) / 1000.0 - 0.5;
        i = i + 1;
    }

    int pos = 0;
    int epochs = 0;
    float score = 0.0;
    while (pos + 32 <= buflen) {
        // Load one input pattern.
        i = 0;
        while (i < 32) {
            inv[i] = buf[pos + i] / 255.0;
            i = i + 1;
        }
        // Forward: hidden layer.
        int h = 0;
        while (h < 16) {
            float sum = 0.0;
            int k = 0;
            while (k < 32) {
                sum = sum + w1[h * 32 + k] * inv[k];
                k = k + 1;
            }
            if (sum < 0.0) { sum = sum * 0.01; }
            if (sum > 4.0) { sum = 4.0; }
            hid[h] = sum;
            h = h + 1;
        }
        // Forward: output layer.
        int o = 0;
        while (o < 8) {
            float sum = 0.0;
            int k = 0;
            while (k < 16) {
                sum = sum + w2[o * 16 + k] * hid[k];
                k = k + 1;
            }
            outv[o] = sum;
            o = o + 1;
        }
        // "Backward": nudge output weights toward target 0.5.
        o = 0;
        while (o < 8) {
            float err = 0.5 - outv[o];
            int k = 0;
            while (k < 16) {
                w2[o * 16 + k] = w2[o * 16 + k] +
                                 0.01 * err * hid[k];
                k = k + 1;
            }
            score = score + (err < 0.0 ? -err : err);
            o = o + 1;
        }
        pos = pos + 32;
        epochs = epochs + 1;
    }
    print_intln(epochs);
    print_intln(score * 1000.0);
    return 0;
}
)ILC";

// --- ear: filter bank over a sample stream ---------------------------

const char *const earSource = R"ILC(
float state[8];
float coefa[8] = { 0.90, 0.80, 0.70, 0.60, 0.50, 0.40, 0.30, 0.20 };
float coefb[8] = { 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45 };
int counts[8];

int main() {
    read_all();
    int i = 0;
    float energy = 0.0;
    while (i < buflen) {
        float x = (buf[i] - 128) / 128.0;
        int f = 0;
        while (f < 8) {
            state[f] = coefa[f] * state[f] + coefb[f] * x;
            float mag = state[f];
            if (mag < 0.0) { mag = -mag; }
            energy = energy + mag;
            if (mag > 0.35) {
                counts[f] = counts[f] + 1;
            }
            f = f + 1;
        }
        i = i + 1;
    }
    int f = 0;
    while (f < 8) { print_intln(counts[f]); f = f + 1; }
    print_intln(energy);
    return 0;
}
)ILC";

std::vector<Workload>
buildSuite()
{
    auto make = [](const char *name, const char *paperName,
                   const char *body,
                   std::string (*gen)(int), int scale) {
        Workload w;
        w.name = name;
        w.paperName = paperName;
        w.source = std::string(prelude) + body;
        w.makeInput = gen;
        w.defaultScale = scale;
        return w;
    };

    std::vector<Workload> suite;
    suite.push_back(make("espresso", "008.espresso", espressoSource,
                         makeTableInput, 2));
    suite.push_back(make("li", "022.li", liSource, makeLispInput, 2));
    suite.push_back(make("eqntott", "023.eqntott", eqntottSource,
                         makeTableInput, 2));
    suite.push_back(make("compress", "026.compress", compressSource,
                         makeCompressInput, 2));
    suite.push_back(make("alvinn", "052.alvinn", alvinnSource,
                         makeSignalInput, 2));
    suite.push_back(make("ear", "056.ear", earSource,
                         makeSignalInput, 2));
    suite.push_back(make("sc", "072.sc", scSource,
                         makeSheetInput, 2));
    suite.push_back(make("cccp", "cccp", cccpSource,
                         makeCodeInput, 2));
    suite.push_back(make("cmp", "cmp", cmpSource, makeCmpInput, 2));
    suite.push_back(make("eqn", "eqn", eqnSource,
                         makeCodeInput, 2));
    suite.push_back(make("grep", "grep", grepSource,
                         makeGrepInput, 2));
    suite.push_back(make("lex", "lex", lexSource,
                         makeCodeInput, 2));
    suite.push_back(make("qsort", "qsort", qsortSource,
                         makeNumbersInput, 2));
    suite.push_back(make("wc", "wc", wcSource, makeTextInput, 2));
    suite.push_back(make("yacc", "yacc", yaccSource,
                         makeCodeInput, 2));
    return suite;
}

} // namespace

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> suite = buildSuite();
    return suite;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const auto &w : allWorkloads()) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

} // namespace predilp
