/**
 * @file
 * The benchmark suite: ILC reimplementations of the kernels of the
 * paper's fifteen benchmarks (§4.1) plus deterministic synthetic
 * input generators. Each program reads its input via getc into a
 * buffer (as buffered stdio would), runs its control-intensive
 * kernel, and prints small results so outputs can be compared
 * across processor models.
 */

#ifndef PREDILP_WORKLOADS_WORKLOADS_HH
#define PREDILP_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

namespace predilp
{

/** One benchmark program. */
struct Workload
{
    std::string name;      ///< short name used in tables ("wc").
    std::string paperName; ///< the paper's benchmark it stands for.
    std::string source;    ///< complete ILC program text.
    int defaultScale = 1;  ///< input scale for the paper tables.

    /** Generate the deterministic input stream at @p scale. */
    std::string (*makeInput)(int scale) = nullptr;

    /** Input at the benchmark's default scale. */
    std::string
    input() const
    {
        return makeInput(defaultScale);
    }
};

/** The full suite, in the paper's table order. */
const std::vector<Workload> &allWorkloads();

/** Find one workload by name; nullptr when absent. */
const Workload *findWorkload(const std::string &name);

// --- input generators (exposed for tests) ---

/** English-like word/line text. */
std::string makeTextInput(int scale);

/** Text where the grep pattern appears rarely. */
std::string makeGrepInput(int scale);

/** Two nearly identical streams concatenated (for cmp). */
std::string makeCmpInput(int scale);

/** Whitespace-separated decimal numbers (for qsort). */
std::string makeNumbersInput(int scale);

/** Moderately repetitive bytes (for compress). */
std::string makeCompressInput(int scale);

/** Ternary truth-table rows (for eqntott/espresso). */
std::string makeTableInput(int scale);

/** Source-code-like text (for cccp/eqn/lex/yacc). */
std::string makeCodeInput(int scale);

/** Byte stream driving the FP benchmarks (alvinn/ear). */
std::string makeSignalInput(int scale);

/** Cell definitions for the spreadsheet benchmark (sc). */
std::string makeSheetInput(int scale);

/** Bytecode program + operands for the interpreter (li). */
std::string makeLispInput(int scale);

} // namespace predilp

#endif // PREDILP_WORKLOADS_WORKLOADS_HH
