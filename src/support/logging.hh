/**
 * @file
 * Error-reporting and diagnostic helpers, in the spirit of gem5's
 * logging.hh: fatal() for user errors, panic() for internal bugs.
 * The error types themselves — including the typed compile/emulate
 * taxonomy (CompileError, EmuTrap, VerifyError, DivergenceError) —
 * live in support/diag.hh.
 */

#ifndef PREDILP_SUPPORT_LOGGING_HH
#define PREDILP_SUPPORT_LOGGING_HH

#include <string>

#include "support/diag.hh"

namespace predilp
{

/** Report an unrecoverable user-level error. Never returns. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::formatMessage(std::forward<Args>(args)...));
}

/** Report an internal invariant violation. Never returns. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::formatMessage(std::forward<Args>(args)...));
}

/**
 * Check an internal invariant; panics with the given message when the
 * condition does not hold. Unlike assert() this is always enabled.
 */
template <typename... Args>
void
panicIf(bool condition, Args &&...args)
{
    if (condition)
        panic(std::forward<Args>(args)...);
}

/** Emit a non-fatal warning to stderr. */
void warn(const std::string &msg);

/** Emit an informational message to stderr when verbose mode is on. */
void inform(const std::string &msg);

/** Globally enable or disable inform() output. */
void setVerbose(bool verbose);

/** @return whether inform() output is enabled. */
bool verboseEnabled();

} // namespace predilp

#endif // PREDILP_SUPPORT_LOGGING_HH
