/**
 * @file
 * Error-reporting and diagnostic helpers, in the spirit of gem5's
 * logging.hh: fatal() for user errors, panic() for internal bugs.
 */

#ifndef PREDILP_SUPPORT_LOGGING_HH
#define PREDILP_SUPPORT_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace predilp
{

/**
 * Error thrown when a user-supplied input (ILC source, configuration,
 * workload) is invalid. The simulation cannot continue, but the fault
 * lies with the input rather than the library.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * Error thrown when an internal invariant is violated, i.e. a bug in
 * the library itself.
 */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

namespace detail
{

/** Fold a parameter pack into a single message string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report an unrecoverable user-level error. Never returns. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::formatMessage(std::forward<Args>(args)...));
}

/** Report an internal invariant violation. Never returns. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::formatMessage(std::forward<Args>(args)...));
}

/**
 * Check an internal invariant; panics with the given message when the
 * condition does not hold. Unlike assert() this is always enabled.
 */
template <typename... Args>
void
panicIf(bool condition, Args &&...args)
{
    if (condition)
        panic(std::forward<Args>(args)...);
}

/** Emit a non-fatal warning to stderr. */
void warn(const std::string &msg);

/** Emit an informational message to stderr when verbose mode is on. */
void inform(const std::string &msg);

/** Globally enable or disable inform() output. */
void setVerbose(bool verbose);

/** @return whether inform() output is enabled. */
bool verboseEnabled();

} // namespace predilp

#endif // PREDILP_SUPPORT_LOGGING_HH
