/**
 * @file
 * Minimal JSON document model for the serializable request/config
 * surface (EvalRequest, SimConfig, sweep grid specs, worker result
 * files). Deliberately small: parse into an immutable JsonValue
 * tree, navigate with typed accessors that throw FatalError with the
 * offending key path, and re-serialize deterministically.
 *
 * Numbers keep their lexical class: an integer literal (no '.', no
 * exponent) is an Int, anything else a Double. That distinction is
 * what lets StatsSnapshot counters (integers) and timers (doubles)
 * survive a parse/re-emit round trip bit-for-bit — the same contract
 * StatsSnapshot::fromJson relies on.
 *
 * Object members preserve source order (grid-spec axis order is
 * semantic: the first listed axis varies slowest in cell expansion).
 */

#ifndef PREDILP_SUPPORT_JSON_HH
#define PREDILP_SUPPORT_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace predilp
{

/** One parsed JSON value; see file comment. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,
        Double,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    /** Parse @p text (one complete document; trailing junk throws). */
    static JsonValue parse(const std::string &text);

    Kind kind() const { return kind_; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }

    /** @return the bool payload; throws FatalError on other kinds. */
    bool asBool() const;

    /** @return the integer payload; a Double throws (lossy). */
    std::int64_t asInt() const;

    /** @return Int or Double payload widened to double. */
    double asDouble() const;

    const std::string &asString() const;

    /** Array elements, in order. Throws unless isArray(). */
    const std::vector<JsonValue> &items() const;

    /** Object members in source order. Throws unless isObject(). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;

    /** Member lookup; nullptr when absent. Throws unless object. */
    const JsonValue *find(const std::string &key) const;

    /** Member lookup; throws FatalError naming @p key when absent. */
    const JsonValue &at(const std::string &key) const;

    /**
     * Re-serialize. Deterministic: member order, spacing, and number
     * formatting are fixed, and parse(dump()) == the original tree.
     */
    std::string dump() const;

    // --- construction (for emitters/tests) ---
    static JsonValue makeBool(bool v);
    static JsonValue makeInt(std::int64_t v);
    static JsonValue makeDouble(double v);
    static JsonValue makeString(std::string v);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue
    makeObject(std::vector<std::pair<std::string, JsonValue>> members);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/** JSON-escape @p s (quotes not included). */
std::string jsonEscape(const std::string &s);

/**
 * Format @p value so it parses back to the identical double and is
 * lexically classified as a Double (always carries '.' or an
 * exponent) — the same convention as StatsSnapshot::toJson.
 */
std::string jsonDouble(double value);

} // namespace predilp

#endif // PREDILP_SUPPORT_JSON_HH
