/**
 * @file
 * A small fixed-size thread pool used to parallelize suite
 * evaluation. Tasks are plain std::function thunks; submit() returns
 * a future so callers can join and observe exceptions. parallelFor()
 * is the main entry point: it fans a loop body out over the pool and
 * blocks until every iteration finished, rethrowing the first
 * exception any iteration raised.
 *
 * Nested use is safe: parallelFor() called from inside a worker
 * thread degrades to a serial loop instead of deadlocking on the
 * pool's own queue.
 */

#ifndef PREDILP_SUPPORT_THREAD_POOL_HH
#define PREDILP_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace predilp
{

/**
 * Resolve a requested thread count: a positive request is taken
 * as-is; 0 (auto) consults the PREDILP_THREADS environment variable
 * and falls back to std::thread::hardware_concurrency(). The result
 * is always at least 1.
 */
int resolveThreadCount(int requested);

/** Fixed-size worker pool. A count of 1 executes tasks inline. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count request, resolved via
     * resolveThreadCount(); the pool spawns no threads when the
     * resolved count is 1 and every task runs inline.
     */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Resolved parallelism (1 means serial/inline). */
    int threadCount() const { return threads_; }

    /**
     * Enqueue one task. With a serial pool, or when called from one
     * of this pool's own workers, the task runs inline before
     * returning (the future is already ready).
     */
    std::future<void> submit(std::function<void()> task);

    /**
     * Run body(i) for every i in [0, count) across the pool and wait
     * for all iterations. The first exception thrown by any
     * iteration is rethrown here after every iteration finished.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

  private:
    void workerLoop();
    bool onWorkerThread() const;

    int threads_ = 1;
    std::vector<std::thread> workers_;
    std::deque<std::packaged_task<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
};

} // namespace predilp

#endif // PREDILP_SUPPORT_THREAD_POOL_HH
