/**
 * @file
 * A resizable bit vector used by the dataflow framework (liveness,
 * dominators) and by the predicate cube algebra.
 */

#ifndef PREDILP_SUPPORT_BIT_VECTOR_HH
#define PREDILP_SUPPORT_BIT_VECTOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace predilp
{

/**
 * Dense dynamic bitset with the set-algebra operations dataflow
 * analyses need. All binary operations require equal sizes.
 */
class BitVector
{
  public:
    BitVector() = default;

    /** Construct a vector of @p size bits, all cleared. */
    explicit BitVector(std::size_t size);

    /** @return the number of bits in the vector. */
    std::size_t size() const { return numBits_; }

    /** Grow or shrink to @p size bits; new bits are cleared. */
    void resize(std::size_t size);

    /** Set bit @p idx to 1. */
    void set(std::size_t idx);

    /** Clear bit @p idx. */
    void reset(std::size_t idx);

    /** Assign @p value to bit @p idx. */
    void assign(std::size_t idx, bool value);

    /** @return the value of bit @p idx. */
    bool test(std::size_t idx) const;

    /** Clear every bit. */
    void clearAll();

    /** Set every bit. */
    void setAll();

    /** @return true when no bit is set. */
    bool none() const;

    /** @return the number of set bits. */
    std::size_t count() const;

    /** In-place union; @return true when this changed. */
    bool unionWith(const BitVector &other);

    /** In-place intersection; @return true when this changed. */
    bool intersectWith(const BitVector &other);

    /** In-place difference (this &= ~other); @return true if changed. */
    bool subtract(const BitVector &other);

    /** @return true when this and @p other share at least one bit. */
    bool intersects(const BitVector &other) const;

    /** @return true when every set bit of this is also set in other. */
    bool isSubsetOf(const BitVector &other) const;

    bool operator==(const BitVector &other) const;
    bool operator!=(const BitVector &other) const
    {
        return !(*this == other);
    }

    /**
     * Invoke @p fn for every set bit index, ascending.
     */
    template <typename Fn>
    void
    forEachSet(Fn &&fn) const
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t word = words_[w];
            while (word) {
                auto bit =
                    static_cast<std::size_t>(__builtin_ctzll(word));
                fn(w * 64 + bit);
                word &= word - 1;
            }
        }
    }

  private:
    void checkIndex(std::size_t idx) const;
    void maskTail();

    std::size_t numBits_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace predilp

#endif // PREDILP_SUPPORT_BIT_VECTOR_HH
