/**
 * @file
 * Named, deterministic fault points: failure as a first-class input.
 *
 * Every risky seam in the system — store publish/validate/mmap,
 * evaluator compile/capture/replay, threaded-emulator entry, sweep
 * worker lifecycle — declares a FAULT_POINT("dotted.name"). In a
 * normal run the macro is a single relaxed atomic load (nothing is
 * armed, nothing else happens, unmeasurable against the bench
 * floors). When the PREDILP_FAULTS spec arms a point, reaching it
 * fires a deterministic failure, so crash-recovery paths that would
 * otherwise only run on rare hardware or kernel misbehaviour are
 * exercised on purpose, in tests and CI, every day.
 *
 * Spec grammar (the PREDILP_FAULTS environment variable; entries
 * separated by ',' or ';'):
 *
 *   <name>=<trigger>[:<action>]
 *
 *   trigger  once            fire on the first hit only
 *            nth:K           fire on the K-th hit only (1-based)
 *            prob:P[@seed]   fire each hit with probability P,
 *                            deterministically derived from the
 *                            seed and the hit index (P in [0,1])
 *   action   throw           throw FaultInjectedError    [default]
 *            crash           SIGKILL the calling process
 *            short-write     cooperative: the call site truncates
 *                            the write it was about to make
 *            delay[:MS]      sleep MS milliseconds (default 100)
 *
 * Example:
 *   PREDILP_FAULTS='store.publish.rename=once:crash,
 *                   eval.replay=nth:3'
 *
 * Determinism across retries and process trees: arming allocates the
 * per-point hit/fired counters in a MAP_SHARED anonymous page, so
 * forked children (sweep workers) share them with the parent and
 * with each other. "once" therefore means once per process *tree*:
 * the worker that dies from an armed crash marks the point fired
 * before dying, and the re-forked replacement runs clean — which is
 * exactly how a real transient fault behaves, and what makes
 * fault-injected sweeps converge to the fault-free report.
 *
 * Points must be declared in knownPoints() (names are validated at
 * arm time, so a typo in a spec fails loudly instead of silently
 * never firing). Names starting with "test." are exempt, for tests
 * that exercise the registry itself.
 *
 * Thread-safety: arming is not concurrent with polling (arm at
 * process start or test setup); after arming, poll() is lock-free
 * and safe from any thread. Counters export as fault.<name>.hits /
 * fault.<name>.fired through stats().
 */

#ifndef PREDILP_SUPPORT_FAULTPOINT_HH
#define PREDILP_SUPPORT_FAULTPOINT_HH

#include <atomic>
#include <string>
#include <vector>

#include "support/diag.hh"
#include "support/stats_registry.hh"

namespace predilp
{

/**
 * The failure a fired fault point injects when its action is
 * "throw". Derives from Error, so every recoverable-failure path
 * (cell isolation, worker retry, batch fallback) treats it exactly
 * like the organic failure it stands in for.
 */
class FaultInjectedError : public Error
{
  public:
    explicit FaultInjectedError(const std::string &point)
        : Error("injected fault at " + point), point_(point)
    {}

    /** The fault point that fired. */
    const std::string &point() const { return point_; }

  private:
    std::string point_;
};

namespace faultpoints
{

/** What a fired fault point asks the call site to do. */
enum class FaultAction : std::uint8_t
{
    None,       ///< not armed / trigger did not fire.
    Throw,      ///< caller should throw (trigger() does it).
    Crash,      ///< handled internally: SIGKILL, never returns.
    ShortWrite, ///< caller truncates the write it was about to do.
    Delay,      ///< handled internally: sleep, then None returned.
};

namespace detail
{
extern std::atomic<bool> anyArmed;
FaultAction pollSlow(const char *name);
} // namespace detail

/**
 * Evaluate @p name against the armed spec. Crash and Delay actions
 * are consumed internally (Crash never returns; Delay sleeps and
 * reports None); Throw and ShortWrite are returned for the caller
 * to apply. The not-armed fast path is one relaxed atomic load.
 */
inline FaultAction
poll(const char *name)
{
    if (!detail::anyArmed.load(std::memory_order_relaxed))
        return FaultAction::None;
    return detail::pollSlow(name);
}

/**
 * poll() and throw FaultInjectedError when the action is Throw.
 * ShortWrite at a site that cannot cooperate degrades to Throw too:
 * an armed fault must never be silently swallowed.
 */
void trigger(const char *name);

/**
 * Parse @p spec and arm it, replacing whatever was armed before
 * (an empty spec disarms everything). Throws FatalError on grammar
 * errors or unknown point names. Not concurrent with poll().
 */
void armFromSpec(const std::string &spec);

/**
 * Arm from the PREDILP_FAULTS environment variable, once per
 * process; later calls are no-ops (children re-armed by fork
 * inherit the parent's shared state instead). Returns true when a
 * non-empty spec is armed after the call.
 */
bool armFromEnv();

/** Disarm everything and forget the armFromEnv() latch (tests). */
void resetForTest();

/** True when any point is armed. */
inline bool
armed()
{
    return detail::anyArmed.load(std::memory_order_relaxed);
}

/**
 * Every instrumented fault-point name, the authoritative list the
 * kill matrix (scripts/fault_ci.sh) iterates and arm-time
 * validation checks against. Extend it when instrumenting a new
 * seam.
 */
const std::vector<std::string> &knownPoints();

/**
 * fault.<name>.hits (times the point was reached while armed) and
 * fault.<name>.fired (times it injected its action) for every
 * armed point.
 */
StatsSnapshot stats();

} // namespace faultpoints

/**
 * Declare a fault point. Free when nothing is armed; throws
 * FaultInjectedError / crashes / delays per the armed spec.
 */
#define FAULT_POINT(name) ::predilp::faultpoints::trigger(name)

} // namespace predilp

#endif // PREDILP_SUPPORT_FAULTPOINT_HH
