/**
 * @file
 * Wall-clock timing helpers for the bench harness and the suite
 * evaluator's per-phase instrumentation.
 */

#ifndef PREDILP_SUPPORT_TIMER_HH
#define PREDILP_SUPPORT_TIMER_HH

#include <atomic>
#include <chrono>
#include <cstdint>

namespace predilp
{

/** Measures elapsed wall-clock time from construction. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    /** Seconds elapsed since construction (or the last reset). */
    double
    seconds() const
    {
        auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start_).count();
    }

    /** Nanoseconds elapsed since construction (or the last reset). */
    std::uint64_t
    nanoseconds() const
    {
        auto now = std::chrono::steady_clock::now();
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - start_)
                .count());
    }

    void reset() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Thread-safe accumulator of wall-clock nanoseconds, for summing one
 * phase's time across concurrent evaluator tasks.
 */
class PhaseAccumulator
{
  public:
    /** Add @p nanos to the total. */
    void
    add(std::uint64_t nanos)
    {
        nanos_.fetch_add(nanos, std::memory_order_relaxed);
    }

    double
    seconds() const
    {
        return static_cast<double>(
                   nanos_.load(std::memory_order_relaxed)) *
               1e-9;
    }

  private:
    std::atomic<std::uint64_t> nanos_{0};
};

/** RAII guard: adds its scope's duration to a PhaseAccumulator. */
class PhaseTimer
{
  public:
    explicit PhaseTimer(PhaseAccumulator &acc) : acc_(acc) {}
    ~PhaseTimer() { acc_.add(timer_.nanoseconds()); }

    PhaseTimer(const PhaseTimer &) = delete;
    PhaseTimer &operator=(const PhaseTimer &) = delete;

  private:
    PhaseAccumulator &acc_;
    WallTimer timer_;
};

} // namespace predilp

#endif // PREDILP_SUPPORT_TIMER_HH
