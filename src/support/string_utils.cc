#include "support/string_utils.hh"

#include <cstdio>

namespace predilp
{

std::string
padRight(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

std::string
padLeft(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
formatFixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
formatCount(std::uint64_t value)
{
    if (value >= 10000ull * 1000)
        return std::to_string(value / (1000ull * 1000)) + "M";
    if (value >= 10000ull)
        return std::to_string(value / 1000ull) + "K";
    return std::to_string(value);
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string current;
    for (char c : s) {
        if (c == sep) {
            out.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    out.push_back(current);
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

} // namespace predilp
