/**
 * @file
 * Deterministic pseudo-random number generation for workload input
 * synthesis. A fixed algorithm (splitmix64) keeps benchmark inputs
 * reproducible across platforms and standard-library versions.
 */

#ifndef PREDILP_SUPPORT_RNG_HH
#define PREDILP_SUPPORT_RNG_HH

#include <cstdint>

namespace predilp
{

/**
 * splitmix64 generator. Small state, full 64-bit output, and entirely
 * deterministic, which matters because benchmark inputs are derived
 * from it and the paper-reproduction tables must be stable.
 */
class Rng
{
  public:
    /** Construct with the given @p seed. */
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    /** @return the next 64 pseudo-random bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** @return a value uniformly distributed in [0, bound). */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        return bound == 0 ? 0 : next() % bound;
    }

    /** @return an integer uniformly distributed in [lo, hi]. */
    std::int64_t
    nextRange(std::int64_t lo, std::int64_t hi)
    {
        auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(nextBelow(span));
    }

    /** @return a double uniformly distributed in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability @p p. */
    bool
    nextBool(double p = 0.5)
    {
        return nextDouble() < p;
    }

  private:
    std::uint64_t state_;
};

} // namespace predilp

#endif // PREDILP_SUPPORT_RNG_HH
