#include "support/faultpoint.hh"

#include <signal.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "support/env.hh"
#include "support/logging.hh"
#include "support/string_utils.hh"

namespace predilp
{

namespace faultpoints
{

namespace
{

enum class Trigger : std::uint8_t
{
    Once,
    Nth,
    Prob,
};

/**
 * Per-point mutable state, shared across fork via one MAP_SHARED
 * anonymous page: hit and fire counts survive into (and are updated
 * by) every worker the arming process forks, so "once" is once per
 * process tree and retried workers run clean after the first fire.
 */
struct SharedSlot
{
    std::atomic<std::uint64_t> hits;
    std::atomic<std::uint64_t> fired;
};

constexpr std::size_t kMaxArmed = 64;
static_assert(sizeof(SharedSlot) * kMaxArmed <= 4096,
              "armed-slot array must fit one shared page");

/** One armed spec entry (immutable after arming). */
struct ArmedPoint
{
    std::string name;
    Trigger trigger = Trigger::Once;
    std::uint64_t nth = 1;       ///< Trigger::Nth: 1-based hit.
    double probability = 0;      ///< Trigger::Prob.
    std::uint64_t seed = 0;      ///< Trigger::Prob.
    FaultAction action = FaultAction::Throw;
    std::uint64_t delayMillis = 100; ///< FaultAction::Delay.
    SharedSlot *slot = nullptr;
};

std::vector<ArmedPoint> gArmed;
SharedSlot *gSharedSlots = nullptr;
bool gArmedFromEnv = false;
std::mutex gArmMutex;

/** SplitMix64: the deterministic per-hit coin for prob triggers. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

[[noreturn]] void
crashNow()
{
    // The most brutal death available: no destructors, no atexit, no
    // signal handlers — indistinguishable from `kill -9` or an OOM
    // kill, which is exactly what the healing layers must survive.
    ::kill(::getpid(), SIGKILL);
    ::_exit(137); // unreachable unless SIGKILL is somehow blocked.
}

bool
isKnownPoint(const std::string &name)
{
    if (name.rfind("test.", 0) == 0)
        return true;
    for (const std::string &known : knownPoints()) {
        if (known == name)
            return true;
    }
    return false;
}

[[noreturn]] void
badSpec(const std::string &entry, const std::string &why)
{
    throw FatalError("bad PREDILP_FAULTS entry '" + entry +
                     "': " + why);
}

/** Parse one `name=trigger[:action]` entry. */
ArmedPoint
parseEntry(const std::string &entry)
{
    ArmedPoint point;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0)
        badSpec(entry, "expected <name>=<trigger>[:<action>]");
    point.name = entry.substr(0, eq);
    if (!isKnownPoint(point.name)) {
        std::string known;
        for (const std::string &name : knownPoints())
            known += (known.empty() ? "" : ", ") + name;
        badSpec(entry, "unknown fault point '" + point.name +
                           "' (known: " + known + ")");
    }

    std::vector<std::string> tokens =
        split(entry.substr(eq + 1), ':');
    if (tokens.empty() || tokens[0].empty())
        badSpec(entry, "missing trigger");

    std::size_t next = 1;
    if (tokens[0] == "once") {
        point.trigger = Trigger::Once;
    } else if (tokens[0] == "nth") {
        point.trigger = Trigger::Nth;
        if (tokens.size() < 2)
            badSpec(entry, "nth needs a hit number (nth:K)");
        char *end = nullptr;
        point.nth = std::strtoull(tokens[1].c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || point.nth == 0)
            badSpec(entry, "bad nth hit number '" + tokens[1] + "'");
        next = 2;
    } else if (tokens[0] == "prob") {
        point.trigger = Trigger::Prob;
        if (tokens.size() < 2)
            badSpec(entry, "prob needs a probability (prob:P[@seed])");
        std::string prob = tokens[1];
        const std::size_t at = prob.find('@');
        if (at != std::string::npos) {
            char *end = nullptr;
            point.seed = std::strtoull(prob.c_str() + at + 1, &end, 10);
            if (end == nullptr || *end != '\0')
                badSpec(entry, "bad prob seed in '" + prob + "'");
            prob = prob.substr(0, at);
        }
        char *end = nullptr;
        point.probability = std::strtod(prob.c_str(), &end);
        if (end == nullptr || *end != '\0' || point.probability < 0 ||
            point.probability > 1)
            badSpec(entry, "probability must be in [0, 1], got '" +
                               prob + "'");
        next = 2;
    } else {
        badSpec(entry, "unknown trigger '" + tokens[0] +
                           "' (once | nth:K | prob:P[@seed])");
    }

    if (next < tokens.size()) {
        const std::string &action = tokens[next];
        if (action == "throw") {
            point.action = FaultAction::Throw;
        } else if (action == "crash") {
            point.action = FaultAction::Crash;
        } else if (action == "short-write") {
            point.action = FaultAction::ShortWrite;
        } else if (action == "delay") {
            point.action = FaultAction::Delay;
            if (next + 1 < tokens.size()) {
                char *end = nullptr;
                point.delayMillis = std::strtoull(
                    tokens[next + 1].c_str(), &end, 10);
                if (end == nullptr || *end != '\0')
                    badSpec(entry, "bad delay milliseconds '" +
                                       tokens[next + 1] + "'");
                next += 1;
            }
        } else {
            badSpec(entry,
                    "unknown action '" + action +
                        "' (throw | crash | short-write | delay[:MS])");
        }
        if (next + 1 < tokens.size())
            badSpec(entry, "trailing tokens after action");
    }
    return point;
}

/** Split a spec into entries on ',' and ';', trimming whitespace. */
std::vector<std::string>
splitEntries(const std::string &spec)
{
    std::vector<std::string> entries;
    std::string current;
    for (char c : spec) {
        if (c == ',' || c == ';') {
            entries.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    entries.push_back(current);
    std::vector<std::string> trimmed;
    for (const std::string &entry : entries) {
        const std::size_t begin =
            entry.find_first_not_of(" \t\n\r");
        if (begin == std::string::npos)
            continue;
        const std::size_t end = entry.find_last_not_of(" \t\n\r");
        trimmed.push_back(entry.substr(begin, end - begin + 1));
    }
    return trimmed;
}

/** Should @p point fire on this hit? Updates shared counters. */
bool
shouldFire(const ArmedPoint &point)
{
    const std::uint64_t hit =
        point.slot->hits.fetch_add(1, std::memory_order_relaxed) + 1;
    switch (point.trigger) {
      case Trigger::Once:
        // The fired count is the once-latch: only the hit that
        // transitions it 0 -> 1 fires, in this process or any
        // forked sibling sharing the slot page.
        {
            std::uint64_t expected = 0;
            return point.slot->fired.compare_exchange_strong(
                expected, 1, std::memory_order_relaxed);
        }
      case Trigger::Nth:
        if (hit != point.nth)
            return false;
        point.slot->fired.fetch_add(1, std::memory_order_relaxed);
        return true;
      case Trigger::Prob: {
        // Deterministic per-hit coin: hash(seed, hit index) mapped
        // to [0, 1). Same seed + same hit order = same faults.
        const double coin =
            static_cast<double>(
                splitmix64(point.seed ^ (hit * 0x9e3779b9ull)) >> 11) *
            0x1.0p-53;
        if (coin >= point.probability)
            return false;
        point.slot->fired.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
}

} // namespace

namespace detail
{

std::atomic<bool> anyArmed{false};

FaultAction
pollSlow(const char *name)
{
    for (const ArmedPoint &point : gArmed) {
        if (point.name != name)
            continue;
        if (!shouldFire(point))
            return FaultAction::None;
        switch (point.action) {
          case FaultAction::Crash:
            crashNow();
          case FaultAction::Delay:
            std::this_thread::sleep_for(
                std::chrono::milliseconds(point.delayMillis));
            return FaultAction::None;
          case FaultAction::Throw:
          case FaultAction::ShortWrite:
          case FaultAction::None:
            return point.action;
        }
    }
    return FaultAction::None;
}

} // namespace detail

void
trigger(const char *name)
{
    const FaultAction action = poll(name);
    // A site without short-write cooperation still must not swallow
    // an armed fault, so ShortWrite escalates to the throw.
    if (action == FaultAction::Throw ||
        action == FaultAction::ShortWrite)
        throw FaultInjectedError(name);
}

void
armFromSpec(const std::string &spec)
{
    std::lock_guard<std::mutex> lock(gArmMutex);
    std::vector<ArmedPoint> armed;
    for (const std::string &entry : splitEntries(spec))
        armed.push_back(parseEntry(entry));
    if (armed.size() > kMaxArmed) {
        throw FatalError("PREDILP_FAULTS arms " +
                         std::to_string(armed.size()) +
                         " points; at most " +
                         std::to_string(kMaxArmed) + " supported");
    }

    // One shared page for the whole process tree, allocated at first
    // arm and reused (re-arming resets the counters): children
    // forked after arming inherit the mapping, not a copy.
    if (gSharedSlots == nullptr && !armed.empty()) {
        void *page = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_ANONYMOUS, -1, 0);
        if (page == MAP_FAILED) {
            throw FatalError(
                std::string("fault-point mmap failed: ") +
                std::strerror(errno));
        }
        gSharedSlots = static_cast<SharedSlot *>(page);
    }
    if (!armed.empty())
        std::memset(static_cast<void *>(gSharedSlots), 0, 4096);
    for (std::size_t i = 0; i < armed.size(); ++i)
        armed[i].slot = gSharedSlots + i;

    gArmed = std::move(armed);
    detail::anyArmed.store(!gArmed.empty(),
                           std::memory_order_relaxed);
}

bool
armFromEnv()
{
    {
        std::lock_guard<std::mutex> lock(gArmMutex);
        if (gArmedFromEnv)
            return armed();
        gArmedFromEnv = true;
    }
    const std::string spec = EnvConfig::fromEnvironment().faultSpec;
    if (!spec.empty()) {
        armFromSpec(spec);
        warn("fault injection armed: PREDILP_FAULTS='" + spec + "'");
    }
    return armed();
}

void
resetForTest()
{
    std::lock_guard<std::mutex> lock(gArmMutex);
    gArmed.clear();
    gArmedFromEnv = false;
    detail::anyArmed.store(false, std::memory_order_relaxed);
}

const std::vector<std::string> &
knownPoints()
{
    static const std::vector<std::string> points = {
        "store.publish.write",   // artifact temp-file staging
        "store.publish.rename",  // atomic rename into place
        "store.publish.prov",    // provenance-sidecar staged publish
        "store.publish.result",  // certified result record publish
        "store.load.mmap",       // mapping an artifact for replay
        "store.load.validate",   // byte-level artifact validation
        "emu.threaded.capture",  // threaded-backend capture entry
        "eval.compile",          // model compilation in traceFor
        "eval.replay",           // single-config replay in cellResult
        "eval.replay.batch",     // batched replay pass in a group
        "sweep.worker.start",    // forked worker, before evaluation
        "sweep.worker.publish",  // forked worker, result-file write
    };
    return points;
}

StatsSnapshot
stats()
{
    std::lock_guard<std::mutex> lock(gArmMutex);
    StatsSnapshot s;
    for (const ArmedPoint &point : gArmed) {
        s.setCounter("fault." + point.name + ".hits",
                     point.slot->hits.load(
                         std::memory_order_relaxed));
        s.setCounter("fault." + point.name + ".fired",
                     point.slot->fired.load(
                         std::memory_order_relaxed));
    }
    return s;
}

} // namespace faultpoints

} // namespace predilp
