/**
 * @file
 * retryIo: bounded-backoff retry for transient I/O failures.
 *
 * POSIX calls on a shared filesystem legitimately fail with EINTR
 * (signal delivery mid-syscall — the sweep driver's watchdog sends
 * plenty) or EAGAIN/EWOULDBLOCK without anything being wrong; a
 * store that treats those as permanent turns a hiccup into a cold
 * cache or a dead worker. retryIo() retries exactly that transient
 * class with short exponential backoff and hands every other errno
 * straight back to the caller's normal failure path.
 */

#ifndef PREDILP_SUPPORT_RETRY_HH
#define PREDILP_SUPPORT_RETRY_HH

#include <cerrno>
#include <chrono>
#include <thread>

namespace predilp
{

/** Is @p err an errno worth retrying? */
inline bool
isTransientErrno(int err)
{
    return err == EINTR || err == EAGAIN || err == EWOULDBLOCK;
}

/**
 * Run @p fn (a callable returning true on success, leaving errno set
 * on failure) up to @p attempts times, sleeping 1ms, 2ms, 4ms, ...
 * between tries, but only while errno reports a transient condition
 * (EINTR/EAGAIN/EWOULDBLOCK). Returns @p fn's final result; a
 * non-transient failure returns immediately with errno intact.
 */
template <typename Fn>
bool
retryIo(Fn &&fn, int attempts = 5)
{
    for (int attempt = 0;; ++attempt) {
        errno = 0;
        if (fn())
            return true;
        if (attempt + 1 >= attempts || !isTransientErrno(errno))
            return false;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1u << attempt));
    }
}

} // namespace predilp

#endif // PREDILP_SUPPORT_RETRY_HH
