#include "support/env.hh"

#include <cstdlib>
#include <string_view>

#include "support/logging.hh"

namespace predilp
{

EnvConfig
EnvConfig::fromEnvironment()
{
    EnvConfig config;
    if (const char *dir = std::getenv("PREDILP_STORE");
        dir != nullptr && dir[0] != '\0') {
        config.storeDir = dir;
    }
    if (const char *mode = std::getenv("PREDILP_STORE_MODE"))
        config.storeReadOnly = std::string_view(mode) == "ro";
    if (const char *env = std::getenv("PREDILP_THREADS")) {
        int parsed = std::atoi(env);
        if (parsed > 0) {
            config.threads = parsed;
        } else {
            warn("ignoring invalid PREDILP_THREADS value '" +
                 std::string(env) + "'");
        }
    }
    if (const char *emu = std::getenv("PREDILP_EMU"))
        config.emuBackend = emu;
    if (const char *faults = std::getenv("PREDILP_FAULTS");
        faults != nullptr && faults[0] != '\0') {
        config.faultSpec = faults;
    }
    if (const char *tmp = std::getenv("TMPDIR");
        tmp != nullptr && tmp[0] != '\0') {
        config.tmpDir = tmp;
        while (config.tmpDir.size() > 1 &&
               config.tmpDir.back() == '/')
            config.tmpDir.pop_back();
    }
    if (const char *env =
            std::getenv("PREDILP_SWEEP_WATCHDOG_SEC")) {
        char *end = nullptr;
        double parsed = std::strtod(env, &end);
        if (end != nullptr && *end == '\0' && parsed > 0) {
            config.sweepWatchdogSec = parsed;
        } else {
            warn("ignoring invalid PREDILP_SWEEP_WATCHDOG_SEC "
                 "value '" +
                 std::string(env) + "'");
        }
    }
    return config;
}

} // namespace predilp
