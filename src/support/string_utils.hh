/**
 * @file
 * Small string helpers shared across the library: formatting numbers
 * the way the paper's tables print them, joining, and padding.
 */

#ifndef PREDILP_SUPPORT_STRING_UTILS_HH
#define PREDILP_SUPPORT_STRING_UTILS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace predilp
{

/** Left-justify @p s in a field of @p width characters. */
std::string padRight(const std::string &s, std::size_t width);

/** Right-justify @p s in a field of @p width characters. */
std::string padLeft(const std::string &s, std::size_t width);

/** Format with fixed @p decimals digits after the point. */
std::string formatFixed(double value, int decimals);

/**
 * Format a count the way the paper's tables do: 1526K, 11225M, with
 * one suffix step per factor of 1000 above 10000.
 */
std::string formatCount(std::uint64_t value);

/** Join @p parts with @p sep between consecutive elements. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Split @p s on @p sep, keeping empty fields. */
std::vector<std::string> split(const std::string &s, char sep);

/** @return true when @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

} // namespace predilp

#endif // PREDILP_SUPPORT_STRING_UTILS_HH
