#include "support/diag.hh"

#include <new>

#include "support/faultpoint.hh"

namespace predilp
{

std::string
trapKindName(TrapKind kind)
{
    switch (kind) {
      case TrapKind::FuelExhausted:
        return "fuel_exhausted";
      case TrapKind::MemFault:
        return "mem_fault";
      case TrapKind::DivideByZero:
        return "divide_by_zero";
      case TrapKind::BadControl:
        return "bad_control";
      case TrapKind::StackOverflow:
        return "stack_overflow";
      case TrapKind::BadProgram:
        return "bad_program";
    }
    return "?";
}

std::string
classifyException(std::exception_ptr ep) noexcept
{
    if (!ep)
        return "UnknownError";
    try {
        std::rethrow_exception(ep);
    } catch (const CompileError &) {
        return "CompileError";
    } catch (const EmuTrap &) {
        return "EmuTrap";
    } catch (const VerifyError &) {
        return "VerifyError";
    } catch (const DivergenceError &) {
        return "DivergenceError";
    } catch (const TraceCorruptError &) {
        return "TraceCorruptError";
    } catch (const FaultInjectedError &) {
        return "FaultInjectedError";
    } catch (const FatalError &) {
        return "FatalError";
    } catch (const Error &) {
        return "Error";
    } catch (const PanicError &) {
        return "PanicError";
    } catch (const std::bad_alloc &) {
        // Out-of-memory is a resource condition, not a logic bug:
        // give harnesses a label they can retry/degrade on.
        return "ResourceError";
    } catch (const std::length_error &) {
        // vector::resize past max_size throws this instead of
        // bad_alloc; same resource-exhaustion class.
        return "ResourceError";
    } catch (...) {
        return "UnknownError";
    }
}

} // namespace predilp
