#include "support/diag.hh"

namespace predilp
{

std::string
trapKindName(TrapKind kind)
{
    switch (kind) {
      case TrapKind::FuelExhausted:
        return "fuel_exhausted";
      case TrapKind::MemFault:
        return "mem_fault";
      case TrapKind::DivideByZero:
        return "divide_by_zero";
      case TrapKind::BadControl:
        return "bad_control";
      case TrapKind::StackOverflow:
        return "stack_overflow";
      case TrapKind::BadProgram:
        return "bad_program";
    }
    return "?";
}

std::string
classifyException(std::exception_ptr ep) noexcept
{
    if (!ep)
        return "unknown";
    try {
        std::rethrow_exception(ep);
    } catch (const CompileError &) {
        return "CompileError";
    } catch (const EmuTrap &) {
        return "EmuTrap";
    } catch (const VerifyError &) {
        return "VerifyError";
    } catch (const DivergenceError &) {
        return "DivergenceError";
    } catch (const TraceCorruptError &) {
        return "TraceCorruptError";
    } catch (const FatalError &) {
        return "FatalError";
    } catch (const Error &) {
        return "Error";
    } catch (const PanicError &) {
        return "PanicError";
    } catch (...) {
        return "unknown";
    }
}

} // namespace predilp
