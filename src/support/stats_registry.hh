/**
 * @file
 * Unified observability layer: a hierarchical registry of named
 * counters, timers, and value summaries shared by the compiler's
 * PassManager and the timing simulator.
 *
 * Names are dot-separated scopes — `opt.cse.removed`,
 * `sim.btb.mispredict` — and a name is either a leaf or a scope,
 * never both. Handles returned by StatsRegistry::counter() & co. are
 * stable for the registry's lifetime, so hot paths increment a plain
 * 64-bit slot with no map lookup. A registry's handles are meant to
 * be updated from one thread at a time; cross-thread aggregation
 * works by giving each worker its own registry and merging them
 * (merge() is additive and commutative, so totals are independent of
 * both thread count and merge order).
 *
 * StatsSnapshot is the frozen, serializable view: counters plus
 * timers, rendered by toJson() as one nested JSON object grouped by
 * scope, and parseable back with fromJson() (round-trip exact).
 * Every bench binary emits its per-pass and per-simulator numbers
 * through this one seam.
 */

#ifndef PREDILP_SUPPORT_STATS_REGISTRY_HH
#define PREDILP_SUPPORT_STATS_REGISTRY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace predilp
{

/** A single monotonically increasing 64-bit counter. */
class Counter
{
  public:
    void add(std::uint64_t delta = 1) { value_ += delta; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Accumulated wall-clock nanoseconds for one named activity. */
class TimerTotal
{
  public:
    void addNanos(std::uint64_t nanos) { nanos_ += nanos; }
    std::uint64_t nanos() const { return nanos_; }
    double seconds() const { return static_cast<double>(nanos_) * 1e-9; }

  private:
    std::uint64_t nanos_ = 0;
};

/**
 * Summary histogram of recorded values: count, sum, min, max. Enough
 * to answer "how many, how big" questions (hyperblock sizes, pass
 * change counts) without per-bucket storage on the hot path.
 */
class Histogram
{
  public:
    void
    record(std::uint64_t value)
    {
        count_ += 1;
        sum_ += value;
        if (value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    /** Smallest recorded value; 0 when empty. */
    std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
    std::uint64_t max() const { return max_; }

    /** Fold @p other into this summary. */
    void
    merge(const Histogram &other)
    {
        if (other.count_ == 0)
            return;
        count_ += other.count_;
        sum_ += other.sum_;
        if (other.min_ < min_)
            min_ = other.min_;
        if (other.max_ > max_)
            max_ = other.max_;
    }

  private:
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = UINT64_MAX;
    std::uint64_t max_ = 0;
};

/**
 * Immutable, serializable capture of a registry (or of any
 * component's counters): counter leaves hold integers, timer leaves
 * hold seconds as doubles. Merging adds leaf-wise.
 */
class StatsSnapshot
{
  public:
    /** Set counter leaf @p name (creating or overwriting). */
    void setCounter(const std::string &name, std::uint64_t value);

    /** Add @p delta to counter leaf @p name. */
    void addCounter(const std::string &name, std::uint64_t delta);

    /** Set timer leaf @p name to @p seconds. */
    void setSeconds(const std::string &name, double seconds);

    /** @return counter @p name, or 0 when absent. */
    std::uint64_t counter(const std::string &name) const;

    /** @return timer @p name in seconds, or 0.0 when absent. */
    double seconds(const std::string &name) const;

    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, double> &timers() const
    {
        return timers_;
    }

    bool
    empty() const
    {
        return counters_.empty() && timers_.empty();
    }

    /** Leaf-wise additive merge of @p other into this snapshot. */
    void merge(const StatsSnapshot &other);

    /**
     * Render as one nested JSON object, scopes split on '.', keys in
     * lexicographic order (so output is deterministic). Counters are
     * emitted as integers, timers as doubles with round-trip
     * precision. @p indent is the left margin of the opening brace;
     * the text never ends with a newline. Panics if a name is used
     * both as a leaf and as a scope.
     */
    std::string toJson(int indent = 0) const;

    /**
     * Parse text produced by toJson() back into a snapshot: integer
     * leaves become counters, decimal/exponent leaves become timers.
     * Accepts only the subset of JSON toJson() emits (nested objects
     * of numbers); panics on anything else.
     */
    static StatsSnapshot fromJson(const std::string &json);

    /** Exact equality of both leaf maps (doubles compared bitwise). */
    bool operator==(const StatsSnapshot &other) const;
    bool operator!=(const StatsSnapshot &other) const
    {
        return !(*this == other);
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> timers_;
};

/**
 * The registry: owns named counters/timers/histograms and hands out
 * stable handles. Handle creation, merge(), and snapshot() are
 * mutex-guarded; updates through handles are deliberately
 * unsynchronized (one registry per thread, merged afterwards).
 */
class StatsRegistry
{
  public:
    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    /** Stable handle for counter @p name, created at zero. */
    Counter &counter(const std::string &name);

    /** Stable handle for timer @p name. */
    TimerTotal &timer(const std::string &name);

    /** Stable handle for histogram @p name. */
    Histogram &histogram(const std::string &name);

    /**
     * Add every stat of @p other into this registry (counters and
     * timers add; histograms fold). @p other must be quiescent.
     */
    void merge(const StatsRegistry &other);

    /**
     * Freeze the current values. Histograms export as four counter
     * leaves: <name>.count/.sum/.min/.max. Timers export in seconds.
     */
    StatsSnapshot snapshot() const;

  private:
    mutable std::mutex mutex_;
    // node_hash maps (std::map) keep handle addresses stable.
    std::map<std::string, Counter> counters_;
    std::map<std::string, TimerTotal> timers_;
    std::map<std::string, Histogram> histograms_;
};

/** RAII guard: adds its scope's wall time to a TimerTotal. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(TimerTotal &total);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    TimerTotal &total_;
    std::uint64_t startNanos_;
};

} // namespace predilp

#endif // PREDILP_SUPPORT_STATS_REGISTRY_HH
