#include "support/json.hh"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "support/diag.hh"

namespace predilp
{

namespace
{

[[noreturn]] void
jsonError(std::size_t pos, const std::string &what)
{
    throw FatalError(detail::formatMessage("json: at byte ", pos,
                                           ": ", what));
}

/** Recursive-descent parser over the full document. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            jsonError(pos_, "trailing characters after document");
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            jsonError(pos_, "unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            jsonError(pos_, detail::formatMessage(
                                "expected '", c, "', found '",
                                text_[pos_], "'"));
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t len = 0;
        while (lit[len] != '\0')
            ++len;
        if (text_.compare(pos_, len, lit) != 0)
            return false;
        pos_ += len;
        return true;
    }

    JsonValue
    parseValue()
    {
        char c = peek();
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return JsonValue::makeString(parseString());
          case 't':
            if (consumeLiteral("true"))
                return JsonValue::makeBool(true);
            jsonError(pos_, "bad literal");
          case 'f':
            if (consumeLiteral("false"))
                return JsonValue::makeBool(false);
            jsonError(pos_, "bad literal");
          case 'n':
            if (consumeLiteral("null"))
                return JsonValue();
            jsonError(pos_, "bad literal");
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        std::vector<std::pair<std::string, JsonValue>> members;
        if (peek() == '}') {
            ++pos_;
            return JsonValue::makeObject(std::move(members));
        }
        while (true) {
            if (peek() != '"')
                jsonError(pos_, "expected object key");
            std::string key = parseString();
            expect(':');
            for (const auto &[existing, value] : members) {
                (void)value;
                if (existing == key)
                    jsonError(pos_, "duplicate object key '" + key +
                                        "'");
            }
            members.emplace_back(std::move(key), parseValue());
            char c = peek();
            ++pos_;
            if (c == '}')
                break;
            if (c != ',')
                jsonError(pos_ - 1, "expected ',' or '}'");
        }
        return JsonValue::makeObject(std::move(members));
    }

    JsonValue
    parseArray()
    {
        expect('[');
        std::vector<JsonValue> items;
        if (peek() == ']') {
            ++pos_;
            return JsonValue::makeArray(std::move(items));
        }
        while (true) {
            items.push_back(parseValue());
            char c = peek();
            ++pos_;
            if (c == ']')
                break;
            if (c != ',')
                jsonError(pos_ - 1, "expected ',' or ']'");
        }
        return JsonValue::makeArray(std::move(items));
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                jsonError(pos_, "unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                jsonError(pos_, "unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out.push_back(e);
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    jsonError(pos_, "truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        jsonError(pos_, "bad \\u escape digit");
                }
                // Only the escapes our own emitters produce (control
                // characters) are supported; reject surrogates.
                if (code > 0x7f)
                    jsonError(pos_,
                              "non-ASCII \\u escape unsupported");
                out.push_back(static_cast<char>(code));
                break;
              }
              default:
                jsonError(pos_, "unknown escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        skipWs();
        std::size_t start = pos_;
        bool isDouble = false;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' ||
                       c == '+' || c == '-') {
                if (c == '.' || c == 'e' || c == 'E')
                    isDouble = true;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            jsonError(start, "expected a value");
        std::string lex = text_.substr(start, pos_ - start);
        errno = 0;
        if (isDouble) {
            char *end = nullptr;
            double value = std::strtod(lex.c_str(), &end);
            if (end == nullptr || *end != '\0')
                jsonError(start, "malformed number '" + lex + "'");
            return JsonValue::makeDouble(value);
        }
        char *end = nullptr;
        long long value = std::strtoll(lex.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || errno == ERANGE)
            jsonError(start, "malformed integer '" + lex + "'");
        return JsonValue::makeInt(value);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

const char *
kindName(JsonValue::Kind kind)
{
    switch (kind) {
      case JsonValue::Kind::Null:
        return "null";
      case JsonValue::Kind::Bool:
        return "bool";
      case JsonValue::Kind::Int:
        return "integer";
      case JsonValue::Kind::Double:
        return "double";
      case JsonValue::Kind::String:
        return "string";
      case JsonValue::Kind::Array:
        return "array";
      case JsonValue::Kind::Object:
        return "object";
    }
    return "?";
}

[[noreturn]] void
kindError(JsonValue::Kind have, const char *want)
{
    throw FatalError(detail::formatMessage("json: expected ", want,
                                           ", found ",
                                           kindName(have)));
}

void
dumpTo(std::ostream &os, const JsonValue &v)
{
    switch (v.kind()) {
      case JsonValue::Kind::Null:
        os << "null";
        return;
      case JsonValue::Kind::Bool:
        os << (v.asBool() ? "true" : "false");
        return;
      case JsonValue::Kind::Int:
        os << v.asInt();
        return;
      case JsonValue::Kind::Double:
        os << jsonDouble(v.asDouble());
        return;
      case JsonValue::Kind::String:
        os << '"' << jsonEscape(v.asString()) << '"';
        return;
      case JsonValue::Kind::Array: {
        os << '[';
        bool first = true;
        for (const JsonValue &item : v.items()) {
            if (!first)
                os << ", ";
            first = false;
            dumpTo(os, item);
        }
        os << ']';
        return;
      }
      case JsonValue::Kind::Object: {
        os << '{';
        bool first = true;
        for (const auto &[key, value] : v.members()) {
            if (!first)
                os << ", ";
            first = false;
            os << '"' << jsonEscape(key) << "\": ";
            dumpTo(os, value);
        }
        os << '}';
        return;
      }
    }
}

} // namespace

JsonValue
JsonValue::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        kindError(kind_, "bool");
    return bool_;
}

std::int64_t
JsonValue::asInt() const
{
    if (kind_ != Kind::Int)
        kindError(kind_, "integer");
    return int_;
}

double
JsonValue::asDouble() const
{
    if (kind_ == Kind::Int)
        return static_cast<double>(int_);
    if (kind_ != Kind::Double)
        kindError(kind_, "number");
    return double_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        kindError(kind_, "string");
    return string_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (kind_ != Kind::Array)
        kindError(kind_, "array");
    return items_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        kindError(kind_, "object");
    return members_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[name, value] : members()) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (v == nullptr)
        throw FatalError("json: missing key '" + key + "'");
    return *v;
}

std::string
JsonValue::dump() const
{
    std::ostringstream os;
    dumpTo(os, *this);
    return os.str();
}

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue out;
    out.kind_ = Kind::Bool;
    out.bool_ = v;
    return out;
}

JsonValue
JsonValue::makeInt(std::int64_t v)
{
    JsonValue out;
    out.kind_ = Kind::Int;
    out.int_ = v;
    return out;
}

JsonValue
JsonValue::makeDouble(double v)
{
    JsonValue out;
    out.kind_ = Kind::Double;
    out.double_ = v;
    return out;
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue out;
    out.kind_ = Kind::String;
    out.string_ = std::move(v);
    return out;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue out;
    out.kind_ = Kind::Array;
    out.items_ = std::move(items);
    return out;
}

JsonValue
JsonValue::makeObject(
    std::vector<std::pair<std::string, JsonValue>> members)
{
    JsonValue out;
    out.kind_ = Kind::Object;
    out.members_ = std::move(members);
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonDouble(double value)
{
    std::ostringstream os;
    os.precision(17);
    os << value;
    std::string text = os.str();
    if (text.find('.') == std::string::npos &&
        text.find('e') == std::string::npos &&
        text.find('E') == std::string::npos &&
        text.find("inf") == std::string::npos &&
        text.find("nan") == std::string::npos) {
        text += ".0";
    }
    return text;
}

} // namespace predilp
