/**
 * @file
 * EnvConfig: the one documented place every PREDILP_* environment
 * variable is read. Callers used to scatter getenv() calls
 * (SuiteEvaluator for the store, ThreadPool for parallelism, the
 * emulator for backend selection); they all go through
 * EnvConfig::fromEnvironment() now, so the full environment surface
 * is this struct's field list:
 *
 *   PREDILP_STORE       artifact-store root directory ("" = store
 *                       tier off unless set programmatically).
 *   PREDILP_STORE_MODE  "ro" = read-only; anything else (default
 *                       "rw") = read-write.
 *   PREDILP_THREADS     worker-thread override for auto-sized
 *                       ThreadPools; <= 0 or unparsable values are
 *                       warned about and ignored.
 *   PREDILP_EMU         emulator backend: "interp" forces the
 *                       switch-dispatch interpreter; default is the
 *                       pre-decoded threaded engine.
 *   PREDILP_FAULTS      deterministic fault-injection spec (see
 *                       support/faultpoint.hh for the grammar);
 *                       unset/empty = no fault points armed.
 *   PREDILP_SWEEP_WATCHDOG_SEC
 *                       per-shard watchdog for the forked sweep
 *                       driver, in seconds; <= 0 or unparsable
 *                       values are warned about and ignored
 *                       (keeping the built-in default).
 *   TMPDIR              (standard POSIX, not PREDILP_*) scratch
 *                       directory for the sweep driver's worker
 *                       files; unset/empty = "/tmp".
 *
 * fromEnvironment() re-reads the environment on every call (tests
 * setenv() between constructions); callers that want one-time
 * resolution cache the result themselves, as defaultEmuBackend()
 * does.
 */

#ifndef PREDILP_SUPPORT_ENV_HH
#define PREDILP_SUPPORT_ENV_HH

#include <string>

namespace predilp
{

/** Snapshot of the PREDILP_* environment; see file comment. */
struct EnvConfig
{
    /** PREDILP_STORE ("" when unset). */
    std::string storeDir;

    /** PREDILP_STORE_MODE == "ro". */
    bool storeReadOnly = false;

    /** Validated PREDILP_THREADS (0 = unset/invalid = auto). */
    int threads = 0;

    /** Raw PREDILP_EMU value ("" when unset). */
    std::string emuBackend;

    /** Raw PREDILP_FAULTS spec ("" when unset). */
    std::string faultSpec;

    /** Validated PREDILP_SWEEP_WATCHDOG_SEC (0 = unset = default). */
    double sweepWatchdogSec = 0;

    /** TMPDIR with any trailing slashes stripped ("/tmp" when
     * unset or empty). */
    std::string tmpDir = "/tmp";

    /** Read (and validate) the current environment. */
    static EnvConfig fromEnvironment();
};

} // namespace predilp

#endif // PREDILP_SUPPORT_ENV_HH
