#include "support/bit_vector.hh"

#include "support/logging.hh"

namespace predilp
{

namespace
{
constexpr std::size_t wordsFor(std::size_t bits)
{
    return (bits + 63) / 64;
}
} // namespace

BitVector::BitVector(std::size_t size)
    : numBits_(size), words_(wordsFor(size), 0)
{
}

void
BitVector::resize(std::size_t size)
{
    numBits_ = size;
    words_.resize(wordsFor(size), 0);
    maskTail();
}

void
BitVector::checkIndex(std::size_t idx) const
{
    panicIf(idx >= numBits_, "BitVector index ", idx, " out of range ",
            numBits_);
}

void
BitVector::maskTail()
{
    if (numBits_ % 64 != 0 && !words_.empty()) {
        std::uint64_t mask =
            (std::uint64_t{1} << (numBits_ % 64)) - 1;
        words_.back() &= mask;
    }
}

void
BitVector::set(std::size_t idx)
{
    checkIndex(idx);
    words_[idx / 64] |= std::uint64_t{1} << (idx % 64);
}

void
BitVector::reset(std::size_t idx)
{
    checkIndex(idx);
    words_[idx / 64] &= ~(std::uint64_t{1} << (idx % 64));
}

void
BitVector::assign(std::size_t idx, bool value)
{
    if (value)
        set(idx);
    else
        reset(idx);
}

bool
BitVector::test(std::size_t idx) const
{
    checkIndex(idx);
    return (words_[idx / 64] >> (idx % 64)) & 1;
}

void
BitVector::clearAll()
{
    for (auto &w : words_)
        w = 0;
}

void
BitVector::setAll()
{
    for (auto &w : words_)
        w = ~std::uint64_t{0};
    maskTail();
}

bool
BitVector::none() const
{
    for (auto w : words_) {
        if (w != 0)
            return false;
    }
    return true;
}

std::size_t
BitVector::count() const
{
    std::size_t total = 0;
    for (auto w : words_)
        total += static_cast<std::size_t>(__builtin_popcountll(w));
    return total;
}

bool
BitVector::unionWith(const BitVector &other)
{
    panicIf(other.numBits_ != numBits_, "BitVector size mismatch");
    bool changed = false;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        std::uint64_t next = words_[i] | other.words_[i];
        changed |= next != words_[i];
        words_[i] = next;
    }
    return changed;
}

bool
BitVector::intersectWith(const BitVector &other)
{
    panicIf(other.numBits_ != numBits_, "BitVector size mismatch");
    bool changed = false;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        std::uint64_t next = words_[i] & other.words_[i];
        changed |= next != words_[i];
        words_[i] = next;
    }
    return changed;
}

bool
BitVector::subtract(const BitVector &other)
{
    panicIf(other.numBits_ != numBits_, "BitVector size mismatch");
    bool changed = false;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        std::uint64_t next = words_[i] & ~other.words_[i];
        changed |= next != words_[i];
        words_[i] = next;
    }
    return changed;
}

bool
BitVector::intersects(const BitVector &other) const
{
    panicIf(other.numBits_ != numBits_, "BitVector size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) {
        if (words_[i] & other.words_[i])
            return true;
    }
    return false;
}

bool
BitVector::isSubsetOf(const BitVector &other) const
{
    panicIf(other.numBits_ != numBits_, "BitVector size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) {
        if (words_[i] & ~other.words_[i])
            return false;
    }
    return true;
}

bool
BitVector::operator==(const BitVector &other) const
{
    return numBits_ == other.numBits_ && words_ == other.words_;
}

} // namespace predilp
