/**
 * @file
 * The typed, recoverable error taxonomy shared by the compile and
 * emulate paths. Every abnormal outcome a caller may want to survive
 * — a bad source program, IR broken by a transform, an emulated
 * program trapping, two models disagreeing architecturally — is a
 * distinct type under predilp::Error, so harnesses (the differential
 * fuzz oracle, the fault-isolated suite evaluator) can classify
 * failures without parsing message strings.
 *
 * Hierarchy:
 *   std::runtime_error
 *     Error                  root of all recoverable predilp errors
 *       FatalError           invalid user input (legacy fatal())
 *         CompileError       source error with a 1-based line number
 *         EmuTrap            emulated program trapped {kind, pc, steps}
 *       VerifyError          IR invariant broken, names the pass
 *       DivergenceError      architectural disagreement between runs
 *   std::logic_error
 *     PanicError             internal bug (legacy panic())
 */

#ifndef PREDILP_SUPPORT_DIAG_HH
#define PREDILP_SUPPORT_DIAG_HH

#include <cstdint>
#include <exception>
#include <sstream>
#include <stdexcept>
#include <string>

namespace predilp
{

namespace detail
{

/** Fold a parameter pack into a single message string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Root of the recoverable error taxonomy. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &msg) : std::runtime_error(msg)
    {}
};

/**
 * Error thrown when a user-supplied input (ILC source, configuration,
 * workload) is invalid. The simulation cannot continue, but the fault
 * lies with the input rather than the library.
 */
class FatalError : public Error
{
  public:
    explicit FatalError(const std::string &msg) : Error(msg) {}
};

/**
 * Error thrown when an internal invariant is violated, i.e. a bug in
 * the library itself.
 */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/**
 * A source-level error from the lexer, parser, or IR generator,
 * carrying the 1-based source line it was diagnosed on.
 */
class CompileError : public FatalError
{
  public:
    CompileError(int line, const std::string &msg)
        : FatalError(msg), line_(line)
    {}

    /** 1-based source line of the diagnostic (0 when unknown). */
    int line() const { return line_; }

  private:
    int line_ = 0;
};

/**
 * An IR verification failure: some producer (the frontend or a
 * transformation pass) left the program violating a structural
 * invariant. Carries the producer's name so post-pass verification
 * can say exactly which pass broke which invariant.
 */
class VerifyError : public Error
{
  public:
    VerifyError(std::string passName, std::string invariant)
        : Error(passName.empty()
                    ? "invalid IR: " + invariant
                    : "invalid IR after pass '" + passName +
                          "': " + invariant),
          pass_(std::move(passName)), invariant_(std::move(invariant))
    {}

    /** Producer of the broken IR ("" when unattributed). */
    const std::string &passName() const { return pass_; }

    /** The first violated invariant, as reported by the verifier. */
    const std::string &invariant() const { return invariant_; }

  private:
    std::string pass_;
    std::string invariant_;
};

/** Why an emulation run stopped abnormally. */
enum class TrapKind : std::uint8_t
{
    FuelExhausted, ///< dynamic-instruction budget exceeded.
    MemFault,      ///< load/store outside the memory image.
    DivideByZero,  ///< non-speculative integer or FP divide by zero.
    BadControl,    ///< fell off a block / called an unknown function.
    StackOverflow, ///< emulated call stack exceeded its limit.
    BadProgram,    ///< program shape unusable (e.g. main has params).
};

/** @return a stable name, e.g. "fuel_exhausted". */
std::string trapKindName(TrapKind kind);

/**
 * Typed emulator trap. `pc` is the static id of the faulting
 * instruction within its function (-1 when no instruction is
 * executing, e.g. a malformed main); `steps` is the dynamic
 * instruction count at the trap, so a FuelExhausted trap tells the
 * caller exactly what budget was exceeded — letting harnesses
 * classify infinite loops apart from genuine failures.
 */
class EmuTrap : public FatalError
{
  public:
    EmuTrap(TrapKind kind, int pc, std::uint64_t steps,
            const std::string &msg)
        : FatalError(msg), kind_(kind), pc_(pc), steps_(steps)
    {}

    TrapKind kind() const { return kind_; }
    int pc() const { return pc_; }
    std::uint64_t steps() const { return steps_; }

  private:
    TrapKind kind_;
    int pc_;
    std::uint64_t steps_;
};

/**
 * Architectural disagreement between two executions that must be
 * semantically equivalent: a compiled model vs. the reference run, or
 * a trace replay vs. the emulation that produced the trace.
 */
class DivergenceError : public Error
{
  public:
    explicit DivergenceError(const std::string &msg) : Error(msg) {}
};

/**
 * A serialized trace artifact (or an in-memory varint stream fed from
 * one) is malformed: truncated varint, overlong varint, bad magic,
 * version mismatch, checksum failure, or an out-of-bounds section.
 * Byte-level readers throw this instead of reading past their buffer,
 * so a corrupt or hostile on-disk artifact degrades to a recoverable
 * error (the store quarantines the file and recomputes) rather than
 * undefined behaviour.
 */
class TraceCorruptError : public Error
{
  public:
    explicit TraceCorruptError(const std::string &msg) : Error(msg) {}
};

/**
 * Map an in-flight exception to its stable taxonomy label:
 * "CompileError", "VerifyError", "EmuTrap", "DivergenceError",
 * "TraceCorruptError", "FaultInjectedError", "FatalError",
 * "PanicError", or "Error" for the predilp hierarchy. Exceptions
 * from outside it get typed labels too instead of escaping the
 * evaluator thread pool unclassified: "ResourceError" for
 * std::bad_alloc (and length_error, its resize-time twin), and
 * "UnknownError" for everything else. Used for structured failure
 * records; never throws.
 */
std::string classifyException(std::exception_ptr ep) noexcept;

/**
 * Throw a CompileError for 1-based source line @p line. The message
 * is prefixed with "line N: " to match the historical diagnostics.
 */
template <typename... Args>
[[noreturn]] void
compileError(int line, Args &&...args)
{
    throw CompileError(
        line, detail::formatMessage("line ", line, ": ",
                                    std::forward<Args>(args)...));
}

} // namespace predilp

#endif // PREDILP_SUPPORT_DIAG_HH
