/**
 * @file
 * Lightweight statistics helpers: named counters and a plain-text
 * table printer used by the benchmark harness to render the paper's
 * tables and figure data.
 */

#ifndef PREDILP_SUPPORT_STATS_HH
#define PREDILP_SUPPORT_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace predilp
{

/**
 * A named bag of 64-bit counters with merge support. Every component
 * of the simulator exposes its statistics through one of these so the
 * harness can aggregate and print them uniformly.
 */
class StatSet
{
  public:
    /** Add @p delta to counter @p name, creating it at zero. */
    void add(const std::string &name, std::uint64_t delta = 1);

    /** Overwrite counter @p name with @p value. */
    void set(const std::string &name, std::uint64_t value);

    /** @return the value of counter @p name, or 0 if absent. */
    std::uint64_t get(const std::string &name) const;

    /** Merge all counters of @p other into this set. */
    void merge(const StatSet &other);

    /** @return all counters in name order. */
    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

/**
 * Monospace table printer. Collects rows of strings and renders them
 * with column alignment, which is how every bench binary prints the
 * paper's tables and figure series.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append one data row. */
    void addRow(std::vector<std::string> row);

    /** Render the table to @p os. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Arithmetic mean of @p values; 0 when empty. */
double arithmeticMean(const std::vector<double> &values);

} // namespace predilp

#endif // PREDILP_SUPPORT_STATS_HH
