#include "support/stats.hh"

#include "support/string_utils.hh"

namespace predilp
{

void
StatSet::add(const std::string &name, std::uint64_t delta)
{
    counters_[name] += delta;
}

void
StatSet::set(const std::string &name, std::uint64_t value)
{
    counters_[name] = value;
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, value] : other.counters_)
        counters_[name] += value;
}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto account = [&](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    account(header_);
    for (const auto &row : rows_)
        account(row);

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i > 0)
                os << "  ";
            // First column is left-justified (names); the rest are
            // right-justified (numbers), matching the paper's tables.
            os << (i == 0 ? padRight(row[i], widths[i])
                          : padLeft(row[i], widths[i]));
        }
        os << "\n";
    };

    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i > 0 ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace predilp
