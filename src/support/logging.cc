#include "support/logging.hh"

#include <cstdio>

namespace predilp
{

namespace
{
bool verboseFlag = false;
} // namespace

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (verboseFlag)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verboseEnabled()
{
    return verboseFlag;
}

} // namespace predilp
