#include "support/stats_registry.hh"

#include <chrono>
#include <cstdlib>
#include <sstream>

#include "support/logging.hh"

namespace predilp
{

void
StatsSnapshot::setCounter(const std::string &name,
                          std::uint64_t value)
{
    counters_[name] = value;
}

void
StatsSnapshot::addCounter(const std::string &name,
                          std::uint64_t delta)
{
    counters_[name] += delta;
}

void
StatsSnapshot::setSeconds(const std::string &name, double seconds)
{
    timers_[name] = seconds;
}

std::uint64_t
StatsSnapshot::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
StatsSnapshot::seconds(const std::string &name) const
{
    auto it = timers_.find(name);
    return it == timers_.end() ? 0.0 : it->second;
}

void
StatsSnapshot::merge(const StatsSnapshot &other)
{
    for (const auto &[name, value] : other.counters_)
        counters_[name] += value;
    for (const auto &[name, value] : other.timers_)
        timers_[name] += value;
}

bool
StatsSnapshot::operator==(const StatsSnapshot &other) const
{
    return counters_ == other.counters_ && timers_ == other.timers_;
}

namespace
{

/** One scope of the dotted-name tree built for serialization. */
struct JsonNode
{
    // Children in lexicographic order (deterministic output).
    std::map<std::string, JsonNode> children;
    bool isLeaf = false;
    bool isCounter = false;
    std::uint64_t counterValue = 0;
    double timerValue = 0.0;
};

void
insertLeaf(JsonNode &root, const std::string &name, bool isCounter,
           std::uint64_t counterValue, double timerValue)
{
    JsonNode *node = &root;
    std::size_t begin = 0;
    while (true) {
        std::size_t dot = name.find('.', begin);
        std::string part = name.substr(
            begin, dot == std::string::npos ? dot : dot - begin);
        panicIf(part.empty(), "empty scope segment in stat name '",
                name, "'");
        panicIf(node->isLeaf, "stat name '", name,
                "' descends through a leaf");
        node = &node->children[part];
        if (dot == std::string::npos)
            break;
        begin = dot + 1;
    }
    panicIf(node->isLeaf || !node->children.empty(), "stat name '",
            name, "' is both a leaf and a scope");
    node->isLeaf = true;
    node->isCounter = isCounter;
    node->counterValue = counterValue;
    node->timerValue = timerValue;
}

/**
 * Format a double so fromJson() reads back the identical value and
 * classifies it as a timer (always contains '.' or an exponent).
 */
std::string
formatDouble(double value)
{
    std::ostringstream os;
    os.precision(17);
    os << value;
    std::string text = os.str();
    if (text.find('.') == std::string::npos &&
        text.find('e') == std::string::npos &&
        text.find('E') == std::string::npos &&
        text.find("inf") == std::string::npos &&
        text.find("nan") == std::string::npos) {
        text += ".0";
    }
    return text;
}

void
emitNode(std::ostream &os, const JsonNode &node, int indent)
{
    os << "{";
    std::size_t i = 0;
    for (const auto &[key, child] : node.children) {
        os << (i == 0 ? "\n" : ",\n")
           << std::string(static_cast<std::size_t>(indent) + 2, ' ')
           << '"' << key << "\": ";
        if (child.isLeaf) {
            if (child.isCounter)
                os << child.counterValue;
            else
                os << formatDouble(child.timerValue);
        } else {
            emitNode(os, child, indent + 2);
        }
        i += 1;
    }
    if (i > 0)
        os << "\n" << std::string(static_cast<std::size_t>(indent), ' ');
    os << "}";
}

/** Minimal recursive-descent parser for toJson()'s output subset. */
class SnapshotParser
{
  public:
    SnapshotParser(const std::string &text, StatsSnapshot &out)
        : text_(text), out_(out)
    {}

    void
    run()
    {
        parseObject("");
        skipSpace();
        panicIf(pos_ != text_.size(),
                "trailing characters after stats JSON object");
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\r' || text_[pos_] == '\t')) {
            pos_ += 1;
        }
    }

    char
    peek()
    {
        panicIf(pos_ >= text_.size(),
                "unexpected end of stats JSON");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        skipSpace();
        panicIf(peek() != c, "expected '", std::string(1, c),
                "' in stats JSON at offset ", pos_);
        pos_ += 1;
    }

    std::string
    parseKey()
    {
        expect('"');
        std::size_t end = text_.find('"', pos_);
        panicIf(end == std::string::npos,
                "unterminated key in stats JSON");
        std::string key = text_.substr(pos_, end - pos_);
        panicIf(key.empty() || key.find('\\') != std::string::npos,
                "unsupported key in stats JSON: '", key, "'");
        pos_ = end + 1;
        return key;
    }

    void
    parseNumber(const std::string &name)
    {
        skipSpace();
        std::size_t end = pos_;
        bool isInteger = true;
        while (end < text_.size()) {
            char c = text_[end];
            if (c == '.' || c == 'e' || c == 'E') {
                isInteger = false;
            } else if (!(c == '-' || c == '+' ||
                         (c >= '0' && c <= '9'))) {
                break;
            }
            end += 1;
        }
        std::string token = text_.substr(pos_, end - pos_);
        panicIf(token.empty(), "expected number in stats JSON for '",
                name, "'");
        if (isInteger) {
            out_.setCounter(name,
                            std::strtoull(token.c_str(), nullptr, 10));
        } else {
            out_.setSeconds(name, std::strtod(token.c_str(), nullptr));
        }
        pos_ = end;
    }

    void
    parseObject(const std::string &prefix)
    {
        expect('{');
        skipSpace();
        if (peek() == '}') {
            pos_ += 1;
            return;
        }
        while (true) {
            skipSpace();
            std::string key = parseKey();
            std::string name =
                prefix.empty() ? key : prefix + '.' + key;
            expect(':');
            skipSpace();
            if (peek() == '{')
                parseObject(name);
            else
                parseNumber(name);
            skipSpace();
            if (peek() == ',') {
                pos_ += 1;
                continue;
            }
            expect('}');
            return;
        }
    }

    const std::string &text_;
    StatsSnapshot &out_;
    std::size_t pos_ = 0;
};

} // namespace

std::string
StatsSnapshot::toJson(int indent) const
{
    JsonNode root;
    for (const auto &[name, value] : counters_)
        insertLeaf(root, name, true, value, 0.0);
    for (const auto &[name, value] : timers_) {
        panicIf(counters_.count(name) != 0, "stat name '", name,
                "' is both a counter and a timer");
        insertLeaf(root, name, false, 0, value);
    }
    std::ostringstream os;
    emitNode(os, root, indent);
    return os.str();
}

StatsSnapshot
StatsSnapshot::fromJson(const std::string &json)
{
    StatsSnapshot snapshot;
    SnapshotParser(json, snapshot).run();
    return snapshot;
}

Counter &
StatsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_[name];
}

TimerTotal &
StatsRegistry::timer(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return timers_[name];
}

Histogram &
StatsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return histograms_[name];
}

void
StatsRegistry::merge(const StatsRegistry &other)
{
    // Lock ordering: callers merge per-worker registries into one
    // aggregate, never two aggregates into each other concurrently.
    std::scoped_lock lock(mutex_, other.mutex_);
    for (const auto &[name, counter] : other.counters_)
        counters_[name].add(counter.value());
    for (const auto &[name, timer] : other.timers_)
        timers_[name].addNanos(timer.nanos());
    for (const auto &[name, histogram] : other.histograms_)
        histograms_[name].merge(histogram);
}

StatsSnapshot
StatsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    StatsSnapshot snapshot;
    for (const auto &[name, counter] : counters_)
        snapshot.setCounter(name, counter.value());
    for (const auto &[name, timer] : timers_)
        snapshot.setSeconds(name, timer.seconds());
    for (const auto &[name, histogram] : histograms_) {
        snapshot.setCounter(name + ".count", histogram.count());
        snapshot.setCounter(name + ".sum", histogram.sum());
        snapshot.setCounter(name + ".min", histogram.min());
        snapshot.setCounter(name + ".max", histogram.max());
    }
    return snapshot;
}

namespace
{

std::uint64_t
nowNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

ScopedTimer::ScopedTimer(TimerTotal &total)
    : total_(total), startNanos_(nowNanos())
{}

ScopedTimer::~ScopedTimer()
{
    total_.addNanos(nowNanos() - startNanos_);
}

} // namespace predilp
