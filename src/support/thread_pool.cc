#include "support/thread_pool.hh"

#include "support/env.hh"
#include "support/logging.hh"

namespace predilp
{

namespace
{

/** Identifies the pool (if any) the current thread works for. */
thread_local const ThreadPool *currentPool = nullptr;

} // namespace

int
resolveThreadCount(int requested)
{
    if (requested > 0)
        return requested;
    if (int env = EnvConfig::fromEnvironment().threads; env > 0)
        return env;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads)
    : threads_(resolveThreadCount(threads))
{
    if (threads_ <= 1)
        return;
    workers_.reserve(static_cast<std::size_t>(threads_));
    for (int i = 0; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

bool
ThreadPool::onWorkerThread() const
{
    return currentPool == this;
}

void
ThreadPool::workerLoop()
{
    currentPool = this;
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained.
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // exceptions land in the task's future.
    }
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> future = packaged.get_future();
    // Inline execution keeps a serial pool allocation-free and makes
    // nested submission from a worker deadlock-free: a worker waiting
    // on its own pool's queue could starve when every other worker is
    // doing the same.
    if (workers_.empty() || onWorkerThread()) {
        packaged();
        return future;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        panicIf(stopping_, "submit on a stopping thread pool");
        queue_.push_back(std::move(packaged));
    }
    wake_.notify_one();
    return future;
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    if (workers_.empty() || onWorkerThread() || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        futures.push_back(submit([&body, i] { body(i); }));
    std::exception_ptr first;
    for (auto &future : futures) {
        try {
            future.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace predilp
