#include <map>
#include <set>
#include <vector>

#include "analysis/cfg.hh"
#include "hyperblock/hyperblock.hh"
#include "support/logging.hh"

namespace predilp
{

namespace
{

/**
 * The short-circuit chain produced by if-converting "c1 || c2 || c3"
 * (paper Figure 1):
 *
 *   pred_cc1 { pX<OR>, q1<U!> } a1,b1 (q0)
 *   pred_cc2 { pX<OR>, q2<U!> } a2,b2 (q1)
 *   pred_cc3 { pX<OR>, q3<U!> } a3,b3 (q2)
 *
 * Each define's Pin is the previous continuation predicate, so the
 * defines are strictly sequential. When the middle continuations
 * (q1, q2) have no other consumers and pX is written only by this
 * chain, the boolean identity
 *
 *   q0&c1 | (q0&!c1)&c2 | ... == q0 & (c1|c2|...)
 *
 * lets every OR contribution run under q0 directly, in a single
 * cycle (wired-OR), with the final continuation recomputed as
 * q3 = q0 & !pX. This is the control height reduction the paper
 * attributes to AND/OR-type predicates (§2.1, ref [16]).
 */
struct Chain
{
    std::vector<std::size_t> positions; ///< define positions.
    Reg orReg;                          ///< pX.
    Reg finalCont;                      ///< qk (kept).
    Reg pin;                            ///< q0 (may be invalid).
};

/** @return the single Or-type dest of @p instr, or invalid. */
Reg
orDest(const Instruction &instr)
{
    Reg result;
    for (const auto &pd : instr.predDests()) {
        if (pd.type == PredType::Or) {
            if (result.valid())
                return Reg(); // two OR dests: not the pattern.
            result = pd.reg;
        }
    }
    return result;
}

/** @return the single UBar-type dest of @p instr, or invalid. */
Reg
ubarDest(const Instruction &instr)
{
    Reg result;
    for (const auto &pd : instr.predDests()) {
        if (pd.type == PredType::UBar) {
            if (result.valid())
                return Reg();
            result = pd.reg;
        }
    }
    return result;
}

class HeightReducer
{
  public:
    explicit HeightReducer(Function &fn) : fn_(fn) {}

    int
    run()
    {
        int reduced = 0;
        for (BlockId id : fn_.layout()) {
            if (fn_.block(id)->kind() != BlockKind::Hyperblock)
                continue;
            // Re-scan after each rewrite; positions shift.
            bool changed = true;
            while (changed) {
                changed = false;
                countUses();
                Chain chain;
                if (findChain(*fn_.block(id), chain)) {
                    apply(*fn_.block(id), chain);
                    reduced += 1;
                    changed = true;
                }
            }
        }
        return reduced;
    }

  private:
    /** Count reads of each predicate register across the function
     * (as guard/Pin or as a value operand) and writes. */
    void
    countUses()
    {
        predReads_.clear();
        predWrites_.clear();
        std::vector<Reg> scratch;
        for (BlockId id : fn_.layout()) {
            for (const auto &instr : fn_.block(id)->instrs()) {
                scratch.clear();
                collectUses(instr, scratch);
                for (Reg reg : scratch) {
                    if (reg.cls() == RegClass::Pred)
                        predReads_[reg] += 1;
                }
                for (const auto &pd : instr.predDests())
                    predWrites_[pd.reg] += 1;
                if (instr.isPredAll()) {
                    // Whole-file writes do not count: they are the
                    // chain's initialization.
                }
            }
        }
    }

    bool
    findChain(const BasicBlock &bb, Chain &chain)
    {
        const auto &instrs = bb.instrs();
        for (std::size_t start = 0; start < instrs.size(); ++start) {
            const Instruction &d1 = instrs[start];
            if (!d1.isPredDefine() || d1.predDests().size() != 2)
                continue;
            Reg pX = orDest(d1);
            Reg cont = ubarDest(d1);
            if (!pX.valid() || !cont.valid())
                continue;

            Chain candidate;
            candidate.positions.push_back(start);
            candidate.orReg = pX;
            candidate.pin = d1.guard();

            // Follow the Pin links.
            Reg link = cont;
            std::size_t from = start;
            bool terminal = false;
            while (!terminal) {
                // The continuation must be consumed by exactly one
                // instruction: the next define in the chain. Note
                // OR-dests count as reads too, which is fine — a
                // continuation moonlighting as an accumulator
                // disqualifies the chain.
                if (predReads_[link] != 1 ||
                    predWrites_[link] != 1) {
                    break;
                }
                std::size_t next = from + 1;
                bool found = false;
                for (; next < instrs.size(); ++next) {
                    const Instruction &dn = instrs[next];
                    if (dn.isPredDefine() && dn.guard() == link &&
                        orDest(dn) == pX &&
                        ubarDest(dn).valid() &&
                        dn.predDests().size() == 2) {
                        found = true;
                        break;
                    }
                    // Terminal link: a single-dest OR contribution
                    // with no continuation (the last "|| ck" term).
                    if (dn.isPredDefine() && dn.guard() == link &&
                        orDest(dn) == pX &&
                        dn.predDests().size() == 1) {
                        found = true;
                        terminal = true;
                        break;
                    }
                    // Any other read of link ends the chain (the
                    // single read was not a chain define).
                    std::vector<Reg> uses;
                    collectUses(dn, uses);
                    bool reads = dn.guard() == link;
                    for (Reg reg : uses) {
                        if (reg == link)
                            reads = true;
                    }
                    if (reads)
                        break;
                }
                if (!found)
                    break;
                candidate.positions.push_back(next);
                if (!terminal)
                    link = ubarDest(instrs[next]);
                from = next;
            }

            if (candidate.positions.size() < 2)
                continue;
            // A terminal chain fully consumed its continuations; an
            // open chain leaves the last one for real consumers.
            candidate.finalCont = terminal ? Reg() : link;

            // pX must be written only by the chain defines (plus
            // pred_clear initialization).
            if (predWrites_[pX] !=
                static_cast<int>(candidate.positions.size())) {
                continue;
            }
            // pX must not be read before the last chain define
            // (its intermediate value would change meaning).
            bool earlyRead = false;
            std::size_t last = candidate.positions.back();
            for (std::size_t i = 0; i < last; ++i) {
                bool inChain = false;
                for (std::size_t pos : candidate.positions) {
                    if (pos == i)
                        inChain = true;
                }
                if (inChain)
                    continue;
                std::vector<Reg> uses;
                collectUses(instrs[i], uses);
                bool reads = instrs[i].guard() == pX;
                for (Reg reg : uses) {
                    if (reg == pX)
                        reads = true;
                }
                if (reads) {
                    earlyRead = true;
                    break;
                }
            }
            if (earlyRead)
                continue;

            chain = std::move(candidate);
            return true;
        }
        return false;
    }

    void
    apply(BasicBlock &bb, const Chain &chain)
    {
        auto &instrs = bb.instrs();

        // Rewrite every chain define: keep only the OR dest, run it
        // under the chain's entry Pin.
        for (std::size_t pos : chain.positions) {
            Instruction &def = instrs[pos];
            def.predDests().clear();
            def.addPredDest(chain.orReg, PredType::Or);
            def.setGuard(chain.pin);
        }

        // Recompute the surviving final continuation from pX:
        // qk = Pin & (pX == 0). Terminal chains have none.
        if (chain.finalCont.valid()) {
            Instruction cont = fn_.makeInstr(Opcode::PredEq);
            cont.addPredDest(chain.finalCont, PredType::U);
            cont.addSrc(Operand(chain.orReg));
            cont.addSrc(Operand::imm(0));
            cont.setGuard(chain.pin);
            instrs.insert(instrs.begin() +
                              static_cast<std::ptrdiff_t>(
                                  chain.positions.back() + 1),
                          std::move(cont));
        }
    }

    Function &fn_;
    std::map<Reg, int> predReads_;
    std::map<Reg, int> predWrites_;
};

} // namespace

int
reducePredicateHeight(Function &fn)
{
    return HeightReducer(fn).run();
}

int
reducePredicateHeight(Program &prog)
{
    int reduced = 0;
    for (auto &fn : prog.functions())
        reduced += reducePredicateHeight(*fn);
    return reduced;
}

} // namespace predilp
