#include <algorithm>
#include <map>
#include <set>

#include "analysis/cfg.hh"
#include "analysis/dominators.hh"
#include "analysis/loops.hh"
#include "hyperblock/hyperblock.hh"
#include "superblock/superblock.hh" // cloneBlock / retargetEdges.
#include "support/logging.hh"

namespace predilp
{

namespace
{

/** @return true when @p instr forbids if-converting its block. */
bool
hazardous(const Instruction &instr)
{
    // Calls and returns never join a hyperblock (the paper calls
    // subroutine calls "hazardous"); I/O intrinsics cannot be
    // squashed by the partial-predication lowering, so they are
    // hazardous too. Pre-existing predication means the block was
    // already converted.
    return instr.isCall() || instr.isRet() ||
           instr.op() == Opcode::GetC || instr.op() == Opcode::PutC ||
           instr.op() == Opcode::ReadBlock || instr.guarded() ||
           instr.isPredDefine() || instr.isPredAll();
}

/**
 * Decompose a block's terminator structure. Blocks eligible for
 * if-conversion have all control at the end: [body*, bcc?, jump?] or
 * [body*, bcc?, fallthrough].
 */
struct BlockShape
{
    bool eligible = false;
    int condIndex = -1;          ///< index of trailing cond branch.
    BlockId condTarget = invalidBlock;
    BlockId termTarget = invalidBlock; ///< jump or fallthrough target.
    bool hasTerm = false;        ///< false only for ret blocks.
};

BlockShape
analyzeShape(const BasicBlock &bb)
{
    BlockShape shape;
    const auto &instrs = bb.instrs();
    std::size_t n = instrs.size();

    // Find trailing control instructions.
    std::size_t firstControl = n;
    for (std::size_t i = 0; i < n; ++i) {
        if (instrs[i].isControlTransfer()) {
            firstControl = i;
            break;
        }
    }
    for (std::size_t i = firstControl; i < n; ++i) {
        if (!instrs[i].isControlTransfer())
            return shape; // control in the middle: not eligible.
    }

    std::size_t controls = n - firstControl;
    if (controls > 2)
        return shape;

    if (controls == 2) {
        const Instruction &a = instrs[n - 2];
        const Instruction &b = instrs[n - 1];
        if (!a.isCondBranch() || !b.isJump() || a.guarded() ||
            b.guarded()) {
            return shape;
        }
        shape.condIndex = static_cast<int>(n - 2);
        shape.condTarget = a.target();
        shape.termTarget = b.target();
        shape.hasTerm = true;
    } else if (controls == 1) {
        const Instruction &last = instrs[n - 1];
        if (last.guarded())
            return shape;
        if (last.isCondBranch()) {
            if (bb.fallthrough() == invalidBlock)
                return shape;
            shape.condIndex = static_cast<int>(n - 1);
            shape.condTarget = last.target();
            shape.termTarget = bb.fallthrough();
            shape.hasTerm = true;
        } else if (last.isJump()) {
            shape.termTarget = last.target();
            shape.hasTerm = true;
        } else {
            return shape; // ret: hazardous anyway.
        }
    } else {
        if (bb.fallthrough() == invalidBlock)
            return shape;
        shape.termTarget = bb.fallthrough();
        shape.hasTerm = true;
    }
    shape.eligible = true;
    return shape;
}

/** If-converter for one selected region. */
class IfConverter
{
  public:
    IfConverter(Function &fn, BlockId header,
                const std::vector<BlockId> &region,
                HyperblockStats &stats)
        : fn_(fn), header_(header),
          inRegion_(fn.numBlockIds(), false), stats_(stats)
    {
        for (BlockId id : region)
            inRegion_[static_cast<std::size_t>(id)] = true;
        region_ = region;
    }

    /** @return false when the region turns out non-convertible. */
    bool
    run()
    {
        if (!computeTopoOrder())
            return false;
        computeUnguarded();
        assignPredicates();
        emit();
        return true;
    }

  private:
    bool inRegion(BlockId id) const
    {
        return id != invalidBlock &&
               inRegion_[static_cast<std::size_t>(id)];
    }

    /** In-region successors of @p id, treating edges to the header
     * (back edges) as exits. */
    std::vector<BlockId>
    regionSuccs(BlockId id) const
    {
        std::vector<BlockId> out;
        for (BlockId succ : fn_.block(id)->successors()) {
            if (inRegion(succ) && succ != header_)
                out.push_back(succ);
        }
        return out;
    }

    bool
    computeTopoOrder()
    {
        // Kahn's algorithm over in-region edges (header edges are
        // exits). Also records the in-region in-degree used for
        // predicate type selection.
        std::map<BlockId, int> indegree;
        for (BlockId id : region_)
            indegree[id] = 0;
        for (BlockId id : region_) {
            for (BlockId succ : regionSuccs(id))
                indegree[succ] += 1;
        }
        inEdges_ = indegree;

        std::vector<BlockId> ready;
        for (BlockId id : region_) {
            if (indegree[id] == 0)
                ready.push_back(id);
        }
        // The header must be the unique entry.
        if (ready.size() != 1 || ready.front() != header_)
            return false;

        while (!ready.empty()) {
            // Deterministic: lowest id first.
            std::sort(ready.begin(), ready.end());
            BlockId id = ready.front();
            ready.erase(ready.begin());
            topo_.push_back(id);
            for (BlockId succ : regionSuccs(id)) {
                if (--indegree[succ] == 0)
                    ready.push_back(succ);
            }
        }
        return topo_.size() == region_.size();
    }

    /**
     * A block B may go unguarded when its instructions execute
     * exactly on the dynamic paths that reach B's position in the
     * linear hyperblock. Since exit branches physically leave the
     * block, paths that exit *before* B's position never see B's
     * code; the only dangerous case is an in-region path that
     * bypasses B yet is still alive past B's position (it would be
     * about to execute a block placed after B). So: B is unguarded
     * iff no block placed after B is reachable from the header
     * through in-region edges avoiding B.
     *
     * This is what makes Figure 1's "add i,i,1" and Figure 5's loop
     * induction updates unguarded in the paper's hyperblocks.
     */
    void
    computeUnguarded()
    {
        std::map<BlockId, std::size_t> pos;
        for (std::size_t i = 0; i < topo_.size(); ++i)
            pos[topo_[i]] = i;

        unguarded_.insert(header_);
        for (BlockId candidate : topo_) {
            if (candidate == header_)
                continue;
            std::size_t cpos = pos[candidate];

            // BFS from the header avoiding the candidate.
            std::set<BlockId> seen{header_};
            std::vector<BlockId> work{header_};
            bool bypassed = false;
            while (!work.empty() && !bypassed) {
                BlockId id = work.back();
                work.pop_back();
                for (BlockId succ : regionSuccs(id)) {
                    if (succ == candidate)
                        continue;
                    if (pos[succ] > cpos) {
                        bypassed = true;
                        break;
                    }
                    if (seen.insert(succ).second)
                        work.push_back(succ);
                }
            }
            if (!bypassed)
                unguarded_.insert(candidate);
        }
    }

    bool
    needsGuard(BlockId id) const
    {
        return unguarded_.count(id) == 0;
    }

    /**
     * Assign a predicate register to every guarded block. Single-
     * in-edge blocks reached by an unconditional edge alias their
     * predecessor's predicate; everything else gets a fresh register
     * written by the defines emitted later.
     */
    void
    assignPredicates()
    {
        for (BlockId id : topo_) {
            if (id == header_ || !needsGuard(id))
                continue;
            if (inEdges_[id] == 1) {
                // Find the unique in-region predecessor and edge
                // kind.
                for (BlockId pred : topo_) {
                    const BlockShape shape =
                        analyzeShape(*fn_.block(pred));
                    bool condEdge =
                        shape.condIndex >= 0 &&
                        shape.condTarget == id;
                    bool termEdge =
                        shape.hasTerm && shape.termTarget == id;
                    if (!condEdge && !termEdge)
                        continue;
                    if (condEdge) {
                        predOf_[id] = fn_.newPredReg();
                    } else if (shape.condIndex >= 0 &&
                               inRegion(shape.condTarget) &&
                               shape.condTarget != header_) {
                        // Fallthrough after an in-region branch:
                        // fresh register via the UBar dest.
                        predOf_[id] = fn_.newPredReg();
                    } else {
                        // Unconditional edge (or fallthrough after
                        // an *exit* branch): inherit the
                        // predecessor's predicate.
                        auto it = predOf_.find(pred);
                        if (it != predOf_.end()) {
                            predOf_[id] = it->second;
                        } else if (needsGuard(pred)) {
                            // Unreachable: topo order assigns the
                            // predecessor's register first.
                            panic("predicate assignment order bug");
                        } else {
                            // Predecessor unguarded: this block is
                            // guarded yet reached unconditionally
                            // from an always-executing block — only
                            // possible when the predecessor has an
                            // exit branch; executing past it implies
                            // reaching us, so no guard is needed
                            // dynamically. Use a fresh always-true
                            // predicate... simpler: mark unguarded.
                            unguarded_.insert(id);
                        }
                    }
                    break;
                }
            } else {
                predOf_[id] = fn_.newPredReg();
                orInit_.insert(predOf_[id]);
            }
        }
    }

    Reg
    guardOf(BlockId id) const
    {
        auto it = predOf_.find(id);
        return it == predOf_.end() ? Reg() : it->second;
    }

    /** Append @p instr to the output, guarding it with @p guard. */
    void
    put(Instruction instr, Reg guard)
    {
        if (guard.valid())
            instr.setGuard(guard);
        out_.push_back(std::move(instr));
    }

    /** Emit "pTarget |= (guard)" — define with an always-true cmp. */
    void
    emitTruePredContribution(BlockId target, Reg guard)
    {
        if (!needsGuard(target))
            return;
        Reg pt = guardOf(target);
        // Alias case: target inherits guard directly, no instruction.
        if (pt == guard)
            return;
        panicIf(!pt.valid(), "target predicate not assigned");
        Instruction def = fn_.makeInstr(Opcode::PredEq);
        PredType type =
            inEdges_.at(target) > 1 ? PredType::Or : PredType::U;
        def.addPredDest(pt, type);
        def.addSrc(Operand::imm(0));
        def.addSrc(Operand::imm(0));
        def.setGuard(guard);
        out_.push_back(std::move(def));
        stats_.predDefinesInserted += 1;
    }

    void
    emit()
    {
        // Collect instructions of the new hyperblock.
        for (std::size_t t = 0; t < topo_.size(); ++t) {
            BlockId id = topo_[t];
            BasicBlock *bb = fn_.block(id);
            BlockShape shape = analyzeShape(*bb);
            panicIf(!shape.eligible,
                    "selected block lost eligibility");
            Reg q0 = guardOf(id);

            // Body instructions, guarded.
            std::size_t bodyEnd = shape.condIndex >= 0
                                      ? static_cast<std::size_t>(
                                            shape.condIndex)
                                      : bb->instrs().size();
            // Exclude the trailing jump from the body too.
            if (shape.condIndex < 0 && !bb->instrs().empty() &&
                bb->instrs().back().isJump()) {
                bodyEnd = bb->instrs().size() - 1;
            }
            for (std::size_t i = 0; i < bodyEnd; ++i)
                put(bb->instrs()[i], q0);

            bool condInRegion =
                shape.condIndex >= 0 &&
                inRegion(shape.condTarget) &&
                shape.condTarget != header_;
            bool termInRegion = shape.hasTerm &&
                                inRegion(shape.termTarget) &&
                                shape.termTarget != header_;

            // The conditional branch.
            if (shape.condIndex >= 0) {
                const Instruction &br =
                    bb->instrs()[static_cast<std::size_t>(
                        shape.condIndex)];
                if (condInRegion) {
                    // Becomes a predicate define; the UBar/OrBar
                    // second destination carries the fallthrough
                    // path's contribution when it stays in-region,
                    // or the continuation predicate for an exit.
                    Instruction def = fn_.makeInstr(
                        branchToPredDefine(br.op()));
                    BlockId target = shape.condTarget;
                    if (needsGuard(target)) {
                        Reg pt = guardOf(target);
                        panicIf(!pt.valid(),
                                "missing cond-target predicate");
                        def.addPredDest(pt,
                                        inEdges_.at(target) > 1
                                            ? PredType::Or
                                            : PredType::U);
                    }
                    if (termInRegion) {
                        BlockId tt = shape.termTarget;
                        if (needsGuard(tt)) {
                            Reg pt2 = guardOf(tt);
                            panicIf(!pt2.valid(),
                                    "missing term-target predicate");
                            def.addPredDest(
                                pt2, inEdges_.at(tt) > 1
                                         ? PredType::OrBar
                                         : PredType::UBar);
                        }
                    } else {
                        // Terminal edge exits: continuation
                        // predicate guards the exit jump.
                        Reg qc = fn_.newPredReg();
                        def.addPredDest(qc, PredType::UBar);
                        exitGuard_ = qc;
                        hasExitGuard_ = true;
                    }
                    if (def.predDests().empty()) {
                        // Both targets unguarded: the comparison is
                        // not needed at all.
                    } else {
                        def.addSrc(br.src(0));
                        def.addSrc(br.src(1));
                        def.setGuard(q0);
                        out_.push_back(std::move(def));
                        stats_.predDefinesInserted += 1;
                    }
                    stats_.branchesRemoved += 1;
                } else {
                    // Exit branch (including back edges to the
                    // header): keep it, predicated. The id is kept
                    // so profile taken-counts still describe it
                    // (branch combining relies on that).
                    Instruction exitBr = br;
                    put(std::move(exitBr), q0);
                }
            }

            // The terminal edge.
            if (termInRegion) {
                if (condInRegion) {
                    // Contribution already carried by the define's
                    // second destination (or aliasing).
                } else {
                    emitTruePredContribution(shape.termTarget, q0);
                }
            } else if (shape.hasTerm) {
                // Exit jump (or loop back edge).
                Instruction jump = fn_.makeInstr(Opcode::Jump);
                jump.setTarget(shape.termTarget);
                Reg guard = q0;
                if (condInRegion && hasExitGuard_) {
                    guard = exitGuard_;
                    hasExitGuard_ = false;
                }
                bool isLast = t + 1 == topo_.size();
                put(std::move(jump), isLast ? Reg() : guard);
            }
            stats_.blocksIfConverted += 1;
        }

        // Initialize OR-type predicates.
        std::vector<Instruction> prologue;
        if (!orInit_.empty()) {
            prologue.push_back(fn_.makeInstr(Opcode::PredClear));
        }

        BasicBlock *hb = fn_.block(header_);
        std::vector<Instruction> result;
        result.reserve(prologue.size() + out_.size());
        for (auto &instr : prologue)
            result.push_back(std::move(instr));
        for (auto &instr : out_)
            result.push_back(std::move(instr));
        hb->instrs() = std::move(result);
        hb->setFallthrough(invalidBlock);
        hb->setKind(BlockKind::Hyperblock);
        stats_.hyperblocksFormed += 1;

        // Other region blocks become unreachable; clear them so
        // stale instruction ids don't confuse later passes.
        for (BlockId id : region_) {
            if (id != header_) {
                fn_.block(id)->instrs().clear();
                fn_.block(id)->setFallthrough(invalidBlock);
            }
        }
    }

    Function &fn_;
    BlockId header_;
    std::vector<BlockId> region_;
    std::vector<bool> inRegion_;
    std::vector<BlockId> topo_;
    std::map<BlockId, int> inEdges_;
    std::set<BlockId> unguarded_;
    std::map<BlockId, Reg> predOf_;
    std::set<Reg> orInit_;
    std::vector<Instruction> out_;
    Reg exitGuard_;
    bool hasExitGuard_ = false;
    HyperblockStats &stats_;
};

/** Region selection + conversion driver for one function. */
class HyperblockFormer
{
  public:
    HyperblockFormer(Function &fn, const FunctionProfile &profile,
                     const HyperblockOptions &opts)
        : fn_(fn), profile_(profile), opts_(opts)
    {}

    HyperblockStats
    run()
    {
        CfgInfo cfg(fn_);
        DominatorTree dom(fn_, cfg);
        LoopInfo loops(fn_, cfg, dom);

        // Loop regions, innermost first.
        for (const Loop &loop : loops.loops()) {
            if (convertedAny(loop.body))
                continue;
            std::set<BlockId> candidates;
            for (BlockId id : loop.body) {
                if (loops.depth(id) == loop.depth)
                    candidates.insert(id);
            }
            tryRegion(loop.header, candidates);
        }

        // Acyclic regions seeded at remaining hot branchy blocks.
        if (opts_.acyclicRegions) {
            CfgInfo cfg2(fn_);
            DominatorTree dom2(fn_, cfg2);
            LoopInfo loops2(fn_, cfg2, dom2);
            std::vector<BlockId> seeds = fn_.layout();
            std::stable_sort(seeds.begin(), seeds.end(),
                             [&](BlockId a, BlockId b) {
                                 return profile_.blockCount(a) >
                                        profile_.blockCount(b);
                             });
            for (BlockId seed : seeds) {
                if (converted_.count(seed) != 0)
                    continue;
                bool isLoopHeader = false;
                for (const Loop &loop : loops2.loops()) {
                    if (loop.header == seed)
                        isLoopHeader = true;
                }
                if (isLoopHeader)
                    continue;
                std::set<BlockId> candidates;
                int depth = loops2.depth(seed);
                for (BlockId id : fn_.layout()) {
                    if (loops2.depth(id) == depth &&
                        converted_.count(id) == 0) {
                        candidates.insert(id);
                    }
                }
                tryRegion(seed, candidates);
            }
        }
        return stats_;
    }

  private:
    bool
    convertedAny(const std::vector<BlockId> &blocks) const
    {
        for (BlockId id : blocks) {
            if (converted_.count(id) != 0)
                return true;
        }
        return false;
    }

    bool
    blockEligible(BlockId id) const
    {
        const BasicBlock *bb = fn_.block(id);
        for (const auto &instr : bb->instrs()) {
            if (hazardous(instr))
                return false;
        }
        return analyzeShape(*bb).eligible;
    }

    void
    tryRegion(BlockId header, const std::set<BlockId> &candidates)
    {
        std::uint64_t headerCount = profile_.blockCount(header);
        if (headerCount < opts_.minHeaderCount)
            return;
        if (!blockEligible(header))
            return;

        CfgInfo cfg(fn_);
        std::uint64_t minCount = static_cast<std::uint64_t>(
            static_cast<double>(headerCount) *
            opts_.inclusionRatio);

        // Grow: add candidate blocks whose predecessors are all
        // already selected (single-entry growth), heaviest first,
        // subject to the fetch-saturation constraint.
        std::vector<BlockId> ordered(candidates.begin(),
                                     candidates.end());
        std::stable_sort(ordered.begin(), ordered.end(),
                         [&](BlockId a, BlockId b) {
                             return profile_.blockCount(a) >
                                    profile_.blockCount(b);
                         });

        std::set<BlockId> region{header};
        std::size_t instrs = fn_.block(header)->instrs().size();
        double fetchWork = static_cast<double>(instrs);
        double usefulWork = static_cast<double>(instrs);
        bool changed = true;
        while (changed && region.size() < opts_.maxBlocks) {
            changed = false;
            for (BlockId id : ordered) {
                if (region.count(id) != 0 || id == header)
                    continue;
                if (profile_.blockCount(id) < minCount)
                    continue;
                if (!blockEligible(id))
                    continue;
                // Growth requires reachability from the region; a
                // predecessor outside the region is tolerated (it
                // becomes a side entrance removed afterwards by
                // tail duplication, as in the hyperblock paper).
                bool anyPredIn = false;
                for (BlockId pred : cfg.preds(id)) {
                    if (region.count(pred) != 0)
                        anyPredIn = true;
                }
                if (!anyPredIn)
                    continue;
                std::size_t size =
                    fn_.block(id)->instrs().size();
                if (instrs + size > opts_.maxInstrs)
                    continue;

                // Saturation: every included block is fetched on
                // every entry, but only contributes useful work in
                // proportion to its execution ratio.
                double ratio =
                    static_cast<double>(profile_.blockCount(id)) /
                    static_cast<double>(headerCount);
                ratio = std::min(ratio, 1.0);
                double newFetch =
                    fetchWork + static_cast<double>(size);
                double newUseful =
                    usefulWork + ratio * static_cast<double>(size);
                if (newFetch >
                    opts_.saturationFactor * newUseful) {
                    continue;
                }

                region.insert(id);
                instrs += size;
                fetchWork = newFetch;
                usefulWork = newUseful;
                changed = true;
                if (region.size() >= opts_.maxBlocks)
                    break;
            }
        }
        if (region.size() < 2)
            return;
        if (!removeSideEntrances(header, region))
            return;

        std::vector<BlockId> blocks(region.begin(), region.end());
        IfConverter converter(fn_, header, blocks, stats_);
        if (converter.run()) {
            for (BlockId id : blocks)
                converted_.insert(id);
            fn_.pruneUnreachable();
        }
    }

    /**
     * Tail duplication: a non-header region block with an outside
     * predecessor is a side entrance. The entire in-region cone
     * reachable from it (stopping at the header) is cloned; outside
     * predecessors are retargeted to the clone, which lives outside
     * the region. @return false when duplication would explode.
     */
    bool
    removeSideEntrances(BlockId header, std::set<BlockId> &region)
    {
        for (int iter = 0; iter < 32; ++iter) {
            CfgInfo cfg(fn_);
            BlockId entrance = invalidBlock;
            std::vector<BlockId> outsidePreds;
            for (BlockId id : region) {
                if (id == header)
                    continue;
                for (BlockId pred : cfg.preds(id)) {
                    if (region.count(pred) == 0) {
                        entrance = id;
                        outsidePreds.push_back(pred);
                    }
                }
                if (entrance != invalidBlock)
                    break;
            }
            if (entrance == invalidBlock)
                return true;

            // Cone of in-region blocks reachable from the entrance
            // without passing through the header.
            std::set<BlockId> cone{entrance};
            std::vector<BlockId> work{entrance};
            std::size_t coneInstrs = 0;
            while (!work.empty()) {
                BlockId id = work.back();
                work.pop_back();
                coneInstrs += fn_.block(id)->instrs().size();
                for (BlockId succ : fn_.block(id)->successors()) {
                    if (succ == header ||
                        region.count(succ) == 0) {
                        continue;
                    }
                    if (cone.insert(succ).second)
                        work.push_back(succ);
                }
            }
            if (coneInstrs > 96)
                return false; // too much duplication; give up.

            std::map<BlockId, BlockId> clones;
            for (BlockId id : cone)
                clones[id] = cloneBlock(fn_, id);
            for (const auto &[orig, clone] : clones) {
                for (BlockId succ :
                     fn_.block(orig)->successors()) {
                    auto it = clones.find(succ);
                    if (it != clones.end())
                        retargetEdges(fn_, clone, succ, it->second);
                }
            }
            for (BlockId pred : outsidePreds) {
                retargetEdges(fn_, pred, entrance,
                              clones.at(entrance));
            }
        }
        return false;
    }

    Function &fn_;
    const FunctionProfile &profile_;
    const HyperblockOptions &opts_;
    std::set<BlockId> converted_;
    HyperblockStats stats_;
};

} // namespace

HyperblockStats
formHyperblocks(Function &fn, const FunctionProfile &profile,
                const HyperblockOptions &opts)
{
    return HyperblockFormer(fn, profile, opts).run();
}

HyperblockStats
formHyperblocks(Program &prog, const ProgramProfile &profile,
                const HyperblockOptions &opts)
{
    HyperblockStats total;
    for (auto &fn : prog.functions()) {
        const FunctionProfile *fp = profile.find(fn->name());
        if (fp == nullptr)
            continue;
        HyperblockStats stats = formHyperblocks(*fn, *fp, opts);
        total.hyperblocksFormed += stats.hyperblocksFormed;
        total.blocksIfConverted += stats.blocksIfConverted;
        total.branchesRemoved += stats.branchesRemoved;
        total.predDefinesInserted += stats.predDefinesInserted;
    }
    return total;
}

} // namespace predilp
