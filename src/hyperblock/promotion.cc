#include <map>
#include <vector>

#include "analysis/liveness.hh"
#include "hyperblock/hyperblock.hh"

namespace predilp
{

namespace
{

/** @return true when @p instr may be stripped of its guard. */
bool
promotable(const Instruction &instr)
{
    const auto &info = instr.info();
    if (!instr.guarded() || instr.isPredDefine())
        return false;
    if (!instr.dest().valid() || !instr.predDests().empty())
        return false;
    if (info.sideEffect || instr.isStore() ||
        instr.isControlTransfer() || instr.isCall()) {
        return false;
    }
    // Conditional moves merge with the previous destination value;
    // removing their guard is not promotion, it is a different
    // instruction.
    if (info.isCondMove)
        return false;
    return true;
}

/** Whole-function register def/use occurrence maps. */
struct RegOccurrences
{
    /** (block, index) pairs where the register is defined / used. */
    std::map<Reg, std::vector<std::pair<BlockId, std::size_t>>> defs;
    std::map<Reg, std::vector<std::pair<BlockId, std::size_t>>> uses;
};

RegOccurrences
collectOccurrences(const Function &fn)
{
    RegOccurrences occ;
    std::vector<Reg> scratch;
    for (BlockId id : fn.layout()) {
        const auto &instrs = fn.block(id)->instrs();
        for (std::size_t i = 0; i < instrs.size(); ++i) {
            scratch.clear();
            collectDefs(instrs[i], fn, scratch);
            for (Reg reg : scratch)
                occ.defs[reg].emplace_back(id, i);
            scratch.clear();
            collectUses(instrs[i], scratch);
            for (Reg reg : scratch)
                occ.uses[reg].emplace_back(id, i);
        }
    }
    return occ;
}

int
promoteBlock(Function &fn, BlockId id, const RegOccurrences &occ)
{
    BasicBlock *bb = fn.block(id);
    auto &instrs = bb->instrs();

    int promoted = 0;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        Instruction &instr = instrs[i];
        if (!promotable(instr))
            continue;
        Reg dest = instr.dest();
        Reg guard = instr.guard();

        // The value must be a hyperblock-local temporary: one def
        // (this one) and every use inside this block, after the
        // def, under the same guard. Then the speculative value
        // written when the guard is false is never observed — the
        // consumers are squashed exactly when the def was (paper
        // Figure 2's temp1/temp2 case).
        auto defsIt = occ.defs.find(dest);
        if (defsIt == occ.defs.end() || defsIt->second.size() != 1)
            continue;

        bool usesOk = true;
        auto usesIt = occ.uses.find(dest);
        if (usesIt != occ.uses.end()) {
            for (const auto &[useBlock, useIndex] :
                 usesIt->second) {
                if (useBlock != id || useIndex <= i) {
                    usesOk = false;
                    break;
                }
                if (instrs[useIndex].guard() != guard) {
                    usesOk = false;
                    break;
                }
            }
        }
        if (!usesOk)
            continue;

        instr.clearGuard();
        if (instr.info().canTrap)
            instr.setSpeculative(true);
        promoted += 1;
    }
    return promoted;
}

} // namespace

int
promotePredicates(Function &fn)
{
    RegOccurrences occ = collectOccurrences(fn);
    int promoted = 0;
    for (BlockId id : fn.layout())
        promoted += promoteBlock(fn, id, occ);
    return promoted;
}

int
promotePredicates(Program &prog)
{
    int promoted = 0;
    for (auto &fn : prog.functions())
        promoted += promotePredicates(*fn);
    return promoted;
}

} // namespace predilp
