/**
 * @file
 * Hyperblock formation and if-conversion (Mahlke et al., MICRO-25),
 * the full-predication compilation model of the paper. Profile-
 * selected single-entry regions are if-converted into one linear
 * block of predicated instructions with (possibly predicated) exit
 * branches.
 */

#ifndef PREDILP_HYPERBLOCK_HYPERBLOCK_HH
#define PREDILP_HYPERBLOCK_HYPERBLOCK_HH

#include "analysis/profile.hh"
#include "ir/program.hh"
#include "opt/pass.hh"

namespace predilp
{

/** Tuning knobs for hyperblock block selection. */
struct HyperblockOptions
{
    /** Minimum header execution count to attempt a region. */
    std::uint64_t minHeaderCount = 32;

    /**
     * A block joins the region when its execution count is at least
     * this fraction of the header's. Unlikely paths stay as exits.
     */
    double inclusionRatio = 0.01;

    /** Maximum blocks per region. */
    std::size_t maxBlocks = 24;

    /** Maximum instructions in the formed hyperblock. */
    std::size_t maxInstrs = 256;

    /**
     * Saturation limit (the paper's "including too many blocks may
     * over saturate the processor"): total fetched instructions per
     * region may not exceed this factor times the profile-expected
     * useful instructions per entry. Blocks are considered heaviest
     * first, so unlikely paths are the ones left out as exits.
     */
    double saturationFactor = 1.5;

    /** Also form hyperblocks from acyclic (non-loop) regions. */
    bool acyclicRegions = true;
};

/** Formation statistics, for tests and reporting. */
struct HyperblockStats
{
    int hyperblocksFormed = 0;
    int blocksIfConverted = 0;
    int branchesRemoved = 0;
    int predDefinesInserted = 0;
};

/**
 * Form hyperblocks in @p fn. Call after classical optimization and
 * before layout/scheduling. Region selection uses @p profile.
 */
HyperblockStats formHyperblocks(Function &fn,
                                const FunctionProfile &profile,
                                const HyperblockOptions &opts = {});

/** formHyperblocks over every profiled function. */
HyperblockStats formHyperblocks(Program &prog,
                                const ProgramProfile &profile,
                                const HyperblockOptions &opts = {});

/**
 * Predicate promotion (paper §3.2, Figure 2): remove the guard from
 * guarded instructions whose destination is only consumed under the
 * same guard and is dead outside the hyperblock, making them
 * speculative. Reduces dependence height for full predication and,
 * crucially, shrinks the code expansion of the partial-predication
 * lowering.
 *
 * @return number of instructions promoted.
 */
int promotePredicates(Function &fn);

/** promotePredicates over every function. */
int promotePredicates(Program &prog);

/**
 * Control height reduction over predicate define chains (paper §2.1,
 * ref [16]): short-circuit OR chains whose defines are serialized
 * through UBar continuation predicates are rewritten so every OR
 * contribution runs under the chain's entry predicate (issuable
 * simultaneously, wired-OR), with the surviving continuation
 * recomputed from the OR result.
 * @return number of chains reduced.
 */
int reducePredicateHeight(Function &fn);

/** reducePredicateHeight over every function. */
int reducePredicateHeight(Program &prog);

/** Options for exit-branch combining. */
struct BranchCombineOptions
{
    /** Combine only exits taken with at most this probability. */
    double maxTakenProb = 0.05;

    /** Minimum number of combinable exits to bother. */
    std::size_t minRun = 2;
};

/**
 * Branch combining (paper §4.2, grep discussion): merge runs of
 * unlikely predicated exit branches in a hyperblock into predicate
 * OR-defines feeding a single exit jump to a decode block, which
 * re-dispatches to the original targets. Legality: instructions
 * between the combined exits must not write anything live at the
 * earlier exits' targets and must not touch memory or trap.
 *
 * @return number of branches eliminated (combined into defines).
 */
int combineExitBranches(Function &fn, const FunctionProfile &profile,
                        const BranchCombineOptions &opts = {});

/** combineExitBranches over every profiled function. */
int combineExitBranches(Program &prog, const ProgramProfile &profile,
                        const BranchCombineOptions &opts = {});

/**
 * "hyperblock.form": formation as a Pass consuming the pre-formation
 * PassContext::profile (no-op when no profile ran). Counters:
 * hyperblock.form.formed / .blocks_if_converted / .branches_removed
 * / .pred_defines.
 */
std::unique_ptr<Pass>
createHyperblockFormationPass(HyperblockOptions opts = {});

/**
 * "hyperblock.promote": predicate promotion.
 * Counter: hyperblock.promote.promoted.
 */
std::unique_ptr<Pass> createPromotionPass();

/**
 * "hyperblock.height": control height reduction.
 * Counter: hyperblock.height.chains.
 */
std::unique_ptr<Pass> createHeightReductionPass();

/**
 * "hyperblock.combine": exit-branch combining, consuming the
 * post-formation PassContext::regionProfile (no-op when no region
 * re-profile ran). Counter: hyperblock.combine.branches_combined.
 */
std::unique_ptr<Pass>
createBranchCombinePass(BranchCombineOptions opts = {});

} // namespace predilp

#endif // PREDILP_HYPERBLOCK_HYPERBLOCK_HH
