#include <set>
#include <vector>

#include "analysis/liveness.hh"
#include "hyperblock/hyperblock.hh"
#include "support/logging.hh"

namespace predilp
{

namespace
{

/** One maximal combinable run of exit branches in a block. */
struct Run
{
    std::vector<std::size_t> branchPositions;
};

/**
 * Scan @p bb for runs of unlikely exit branches separated only by
 * instructions whose execution may be safely delayed past the exits:
 * no memory/IO/calls, no possible traps, and destinations dead at
 * every earlier combined target.
 */
std::vector<Run>
findRuns(const Function &fn, const BasicBlock &bb,
         const FunctionProfile &profile, const Liveness &liveness,
         const BranchCombineOptions &opts)
{
    const RegIndexer &indexer = liveness.indexer();
    std::vector<Run> runs;
    Run current;
    // Union of live-in sets at targets of branches in the current
    // run; intervening defs must avoid it.
    BitVector liveAtTargets(indexer.size());
    std::uint64_t entries = profile.blockCount(bb.id());

    // Guard predicates of combined jumps: the decode block
    // re-dispatches on them, so nothing between may redefine them.
    std::set<Reg> dispatchPreds;

    auto close = [&]() {
        if (current.branchPositions.size() >= opts.minRun)
            runs.push_back(current);
        current = Run{};
        liveAtTargets.clearAll();
        dispatchPreds.clear();
    };

    std::vector<Reg> scratch;
    const auto &instrs = bb.instrs();
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        const Instruction &instr = instrs[i];

        bool combinableExit =
            instr.isCondBranch() ||
            (instr.isJump() && instr.guarded());
        if (combinableExit) {
            double prob =
                entries == 0
                    ? 1.0
                    : static_cast<double>(
                          profile.takenCount(instr.id())) /
                          static_cast<double>(entries);
            if (prob <= opts.maxTakenProb) {
                current.branchPositions.push_back(i);
                liveAtTargets.unionWith(
                    liveness.liveIn(instr.target()));
                if (instr.isJump())
                    dispatchPreds.insert(instr.guard());
                continue;
            }
            close();
            continue;
        }
        if (instr.isControlTransfer() || instr.isCall()) {
            close();
            continue;
        }
        if (current.branchPositions.empty())
            continue;

        // Legality of delaying the exits past this instruction.
        // Potentially-trapping instructions are fine: the machine
        // has non-excepting forms (§4.1), and applyRun switches any
        // such instruction in the run's span to its silent form.
        const auto &info = instr.info();
        bool legal = !info.sideEffect && !instr.isStore() &&
                     instr.op() != Opcode::GetC;
        if (legal) {
            scratch.clear();
            collectDefs(instr, fn, scratch);
            for (Reg reg : scratch) {
                if (liveAtTargets.test(indexer.index(reg)) ||
                    dispatchPreds.count(reg) != 0) {
                    legal = false;
                }
            }
        }
        if (!legal)
            close();
    }
    close();
    return runs;
}

/** Apply one run: defines + combined jump + decode block. */
void
applyRun(Function &fn, BlockId blockId, const Run &run)
{
    // Create the decode block first (block creation may reallocate).
    BasicBlock *decode = fn.newBlock(
        fn.block(blockId)->name() + ".decode");
    BlockId decodeId = decode->id();

    BasicBlock *bb = fn.block(blockId);
    auto &instrs = bb->instrs();

    Reg pcomb = fn.newPredReg();
    std::vector<Reg> linkPreds;
    std::vector<BlockId> targets;

    for (std::size_t pos : run.branchPositions) {
        Instruction &br = instrs[pos];
        targets.push_back(br.target());
        if (br.isCondBranch()) {
            Reg pj = fn.newPredReg();
            linkPreds.push_back(pj);
            Instruction def =
                fn.makeInstr(branchToPredDefine(br.op()));
            def.addPredDest(pj, PredType::U);
            def.addPredDest(pcomb, PredType::Or);
            def.addSrc(br.src(0));
            def.addSrc(br.src(1));
            def.setGuard(br.guard());
            instrs[pos] = std::move(def);
        } else {
            // Predicated exit jump: its guard already is the
            // dispatch predicate; only accumulate it into pcomb.
            panicIf(!br.isJump() || !br.guarded(),
                    "combine position is not an exit");
            linkPreds.push_back(br.guard());
            Instruction def = fn.makeInstr(Opcode::PredEq);
            def.addPredDest(pcomb, PredType::Or);
            def.addSrc(Operand::imm(0));
            def.addSrc(Operand::imm(0));
            def.setGuard(br.guard());
            instrs[pos] = std::move(def);
        }
    }

    // Instructions whose faults would now fire on the (delayed)
    // exit paths become silent.
    for (std::size_t i = run.branchPositions.front();
         i < run.branchPositions.back(); ++i) {
        Instruction &instr = instrs[i];
        if (instr.info().canTrap && !instr.isStore())
            instr.setSpeculative(true);
    }

    // Insert the combined jump right after the last define.
    Instruction jump = fn.makeInstr(Opcode::Jump);
    jump.setTarget(decodeId);
    jump.setGuard(pcomb);
    instrs.insert(instrs.begin() +
                      static_cast<std::ptrdiff_t>(
                          run.branchPositions.back() + 1),
                  std::move(jump));

    // Fill the decode block: re-dispatch in original priority order.
    decode = fn.block(decodeId);
    for (std::size_t j = 0; j < targets.size(); ++j) {
        Instruction dispatch = fn.makeInstr(Opcode::Jump);
        dispatch.setTarget(targets[j]);
        if (j + 1 < targets.size())
            dispatch.setGuard(linkPreds[j]);
        decode->instrs().push_back(std::move(dispatch));
    }

}

} // namespace

int
combineExitBranches(Function &fn, const FunctionProfile &profile,
                    const BranchCombineOptions &opts)
{
    int combined = 0;
    // Snapshot: applyRun creates decode blocks; only scan the
    // original hyperblocks.
    std::vector<BlockId> blocks;
    for (BlockId id : fn.layout()) {
        if (fn.block(id)->kind() == BlockKind::Hyperblock)
            blocks.push_back(id);
    }

    for (BlockId id : blocks) {
        CfgInfo cfg(fn);
        Liveness liveness(fn, cfg);
        auto runs =
            findRuns(fn, *fn.block(id), profile, liveness, opts);
        // Apply back-to-front so positions stay valid.
        bool applied = false;
        for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
            applyRun(fn, id, *it);
            applied = true;
            combined +=
                static_cast<int>(it->branchPositions.size());
        }
        // pcomb (OR type) must start each hyperblock entry at 0;
        // inserted once, after all runs, so scan positions stayed
        // valid during application.
        if (applied) {
            auto &instrs = fn.block(id)->instrs();
            if (instrs.empty() ||
                instrs.front().op() != Opcode::PredClear) {
                Instruction clear = fn.makeInstr(Opcode::PredClear);
                instrs.insert(instrs.begin(), std::move(clear));
            }
        }
    }
    return combined;
}

int
combineExitBranches(Program &prog, const ProgramProfile &profile,
                    const BranchCombineOptions &opts)
{
    int combined = 0;
    for (auto &fn : prog.functions()) {
        const FunctionProfile *fp = profile.find(fn->name());
        if (fp == nullptr)
            continue;
        combined += combineExitBranches(*fn, *fp, opts);
    }
    return combined;
}

} // namespace predilp
