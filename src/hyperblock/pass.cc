#include "hyperblock/hyperblock.hh"

namespace predilp
{

namespace
{

class HyperblockFormationPass : public Pass
{
  public:
    explicit HyperblockFormationPass(HyperblockOptions opts)
        : opts_(opts)
    {}

    std::string name() const override { return "hyperblock.form"; }

    PassResult
    run(Program &prog, PassContext &ctx) override
    {
        PassResult result;
        if (!ctx.profile)
            return result;
        HyperblockStats stats =
            formHyperblocks(prog, *ctx.profile, opts_);
        ctx.stats.counter("hyperblock.form.formed")
            .add(static_cast<std::uint64_t>(stats.hyperblocksFormed));
        ctx.stats.counter("hyperblock.form.blocks_if_converted")
            .add(static_cast<std::uint64_t>(stats.blocksIfConverted));
        ctx.stats.counter("hyperblock.form.branches_removed")
            .add(static_cast<std::uint64_t>(stats.branchesRemoved));
        ctx.stats.counter("hyperblock.form.pred_defines")
            .add(static_cast<std::uint64_t>(
                stats.predDefinesInserted));
        result.changes =
            static_cast<std::uint64_t>(stats.hyperblocksFormed);
        return result;
    }

  private:
    HyperblockOptions opts_;
};

class PromotionPass : public FunctionPass
{
  public:
    std::string name() const override { return "hyperblock.promote"; }

    std::uint64_t
    runOnFunction(Function &fn, PassContext &ctx) override
    {
        auto promoted =
            static_cast<std::uint64_t>(promotePredicates(fn));
        if (promoted != 0)
            ctx.stats.counter("hyperblock.promote.promoted")
                .add(promoted);
        return promoted;
    }
};

class HeightReductionPass : public FunctionPass
{
  public:
    std::string name() const override { return "hyperblock.height"; }

    std::uint64_t
    runOnFunction(Function &fn, PassContext &ctx) override
    {
        auto chains =
            static_cast<std::uint64_t>(reducePredicateHeight(fn));
        if (chains != 0)
            ctx.stats.counter("hyperblock.height.chains").add(chains);
        return chains;
    }
};

class BranchCombinePass : public Pass
{
  public:
    explicit BranchCombinePass(BranchCombineOptions opts)
        : opts_(opts)
    {}

    std::string name() const override { return "hyperblock.combine"; }

    PassResult
    run(Program &prog, PassContext &ctx) override
    {
        PassResult result;
        if (!ctx.regionProfile)
            return result;
        result.changes = static_cast<std::uint64_t>(
            combineExitBranches(prog, *ctx.regionProfile, opts_));
        if (result.changed())
            ctx.stats.counter("hyperblock.combine.branches_combined")
                .add(result.changes);
        return result;
    }

  private:
    BranchCombineOptions opts_;
};

} // namespace

std::unique_ptr<Pass>
createHyperblockFormationPass(HyperblockOptions opts)
{
    return std::make_unique<HyperblockFormationPass>(opts);
}

std::unique_ptr<Pass>
createPromotionPass()
{
    return std::make_unique<PromotionPass>();
}

std::unique_ptr<Pass>
createHeightReductionPass()
{
    return std::make_unique<HeightReductionPass>();
}

std::unique_ptr<Pass>
createBranchCombinePass(BranchCombineOptions opts)
{
    return std::make_unique<BranchCombinePass>(opts);
}

} // namespace predilp
