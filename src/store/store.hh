/**
 * @file
 * Persistent, content-addressed artifact store for captured traces.
 *
 * The keyed caches in SuiteEvaluator die with the process, so every
 * bench/CI/fuzz run repays the full emulation cost. This store makes
 * the packed trace the durable unit (the paper's own methodology:
 * emulate once, price many): a cell's TraceBuffer — interned
 * StaticOps, register pool, packed entry chunks, varint address side
 * stream, and the functional RunResult — is serialized once under a
 * SHA-256 content key and reloaded by later processes via mmap, so
 * ChunkCursor replays entry spans straight out of the page cache
 * with zero deserialization copies.
 *
 * Keys: sha256(source bytes ‖ cell key ‖ format version). The cell
 * key is the evaluator's canonical trace key and carries the model,
 * canonicalized AblationFlags, scale, machine, and fuel — machine
 * and fuel are included beyond the obvious axes because scheduling
 * latencies and the capture budget both change the dynamic stream.
 *
 * Robustness: writers serialize to a temp file and publish with an
 * atomic rename under an advisory flock; readers validate magic,
 * version, declared length, and a 64-bit FNV-1a payload checksum
 * before trusting a single byte, and bound every section against the
 * file size. Any mismatch quarantines the file (read-write mode) and
 * reports a miss, so the caller transparently recomputes and
 * re-saves — corrupt artifacts are repaired, never trusted.
 *
 * Provenance is load-bearing: each artifact's `.prov.json` sidecar
 * is a sealed record (see sealRecord) carrying the cell's digests
 * plus the exact payload checksum of the artifact it describes.
 * Sidecars publish through the same staged write→fsync→rename path
 * as the artifact — sidecar first, so no crash window can expose a
 * canonical artifact without durable provenance — and the load path
 * verifies the pairing: a torn, stale, or mismatched sidecar
 * condemns the pair to quarantine and the caller recomputes both.
 *
 * The store also keeps certified result records (saveResult /
 * loadResult): sealed JSON under `results/`, one per priced cell,
 * which `predilp_diff` joins across runs to classify figure drift.
 *
 * Counters (store.hit / store.miss / store.repair /
 * store.bytes_mapped / store.write) export as a StatsSnapshot
 * through the same observability seam as everything else.
 */

#ifndef PREDILP_STORE_STORE_HH
#define PREDILP_STORE_STORE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "support/json.hh"
#include "support/stats_registry.hh"
#include "trace/trace.hh"

namespace predilp
{

/** How (and whether) an evaluator uses the on-disk store. */
enum class StoreMode
{
    Off,       ///< no persistent caching.
    ReadOnly,  ///< load hits, never write or quarantine.
    ReadWrite, ///< load hits, save misses, quarantine corruption.
};

/**
 * Section map of one on-disk artifact, produced by inspectArtifact
 * after full validation. Lets tests and tooling target a specific
 * region (header, entry stream, varint stream, checksum) without
 * duplicating layout knowledge.
 */
struct ArtifactInfo
{
    std::uint32_t version = 0;
    std::uint64_t records = 0;
    std::size_t fileBytes = 0;
    /** Byte offset of the checksum field inside the header. */
    std::size_t checksumOffset = 0;
    /** The header's FNV-1a-64 payload checksum — what a paired
     * `.prov.json` sidecar must echo in `artifact_checksum`. */
    std::uint64_t payloadChecksum = 0;
    /** Packed TraceEntry stream. */
    std::size_t entriesOffset = 0;
    std::size_t entriesBytes = 0;
    /** Zigzag-varint memory side stream. */
    std::size_t memOffset = 0;
    std::size_t memBytes = 0;
};

/** Persistent content-addressed trace store; see file comment. */
class ArtifactStore
{
  public:
    /**
     * Serialized trace format version. Part of every content key and
     * of the file header; bump on any layout or packing change (the
     * CI cache key in .github/workflows/ci.yml mirrors it).
     */
    static constexpr std::uint32_t formatVersion = 1;

    /**
     * Open (creating directories as needed) a store rooted at
     * @p dir. @p mode must not be Off.
     */
    ArtifactStore(std::string dir, StoreMode mode);

    StoreMode mode() const { return mode_; }
    const std::string &dir() const { return dir_; }

    /**
     * Content key for one trace cell: sha256 over the ILC source
     * bytes, the evaluator's canonical cell key (model, ablation,
     * scale, machine, fuel), and formatVersion.
     */
    static std::string keyFor(const std::string &sourceBytes,
                              const std::string &cellKey);

    /**
     * Load the artifact for @p key, or nullptr on miss. A present
     * but invalid file counts a repair, is quarantined (read-write
     * mode), and reports as a miss so the caller recomputes. On a
     * hit the returned buffer replays out of the file mapping.
     *
     * When a `.prov.json` sidecar is present it must be a sealed
     * record whose `artifact_checksum` names this artifact's payload
     * checksum; a torn or stale sidecar condemns the pair exactly
     * like a corrupt artifact (quarantine both, report a miss).
     * Sidecar-less artifacts load normally.
     */
    std::shared_ptr<const TraceBuffer> load(const std::string &key);

    /**
     * Serialize @p buffer under @p key: stage to a temp file (POSIX
     * write + fsync), then atomically rename into place under the
     * store's advisory flock. No-op (returning false) in read-only
     * mode; never throws — a filesystem refusal degrades to a cold
     * cache, not a failure.
     *
     * A non-empty @p provenanceJson (a JSON object) is stamped with
     * the artifact's payload checksum (`artifact_checksum`), sealed
     * (`checksum`), and published through the same staged path as a
     * sidecar at objectPath(key) + ".prov.json" — *before* the
     * artifact's own rename, so at no kill point does the canonical
     * artifact exist without durable provenance. If the sidecar
     * cannot be published the artifact is not published either.
     */
    bool save(const std::string &key, const TraceBuffer &buffer,
              const std::string &provenanceJson = "");

    /**
     * The sealed provenance sidecar published with @p key's
     * artifact, or "" when none exists or it fails validation
     * (torn envelope, or `artifact_checksum` not matching the
     * on-disk artifact) — invalid provenance is never served.
     */
    std::string loadProvenance(const std::string &key) const;

    /**
     * Publish @p record as a sealed certified-result record at
     * resultPath(key) via the staged write→fsync→rename path.
     * Read-write mode only. Records are overwritten idempotently —
     * every evaluation republishes its cells, which self-heals any
     * torn record left by a crash.
     */
    bool saveResult(const std::string &key, const JsonValue &record);

    /**
     * The sealed certified record at resultPath(key) as one JSON
     * line, or "" when absent or failing seal validation.
     */
    std::string loadResult(const std::string &key) const;

    /** Final on-disk path of @p key's artifact (for tests/GC). */
    std::string objectPath(const std::string &key) const;

    /** On-disk path of @p key's certified result record. */
    std::string resultPath(const std::string &key) const;

    /** store.* counters as a snapshot (the StatsRegistry seam). */
    StatsSnapshot stats() const;

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::uint64_t repairs() const { return repairs_.load(); }
    std::uint64_t writes() const { return writes_.load(); }
    std::uint64_t bytesMapped() const { return bytesMapped_.load(); }

  private:
    void quarantine(const std::string &path) const;

    /** Seal @p provenanceJson with @p payloadChecksum and publish it
     * atomically at @p path + ".prov.json". */
    bool publishProvenance(const std::string &path,
                           const std::string &provenanceJson,
                           std::uint64_t payloadChecksum) const;

    std::string dir_;
    StoreMode mode_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> repairs_{0};
    std::atomic<std::uint64_t> writes_{0};
    std::atomic<std::uint64_t> bytesMapped_{0};
};

/**
 * Validate the artifact at @p path (magic, version, length,
 * checksum, section bounds) and return its section map; nullopt when
 * the file is missing or fails any check.
 */
std::optional<ArtifactInfo>
inspectArtifact(const std::string &path);

/**
 * Seal a JSON object: return a copy with a `checksum` member equal
 * to "sha256:" + the hex digest of the record's canonical dump with
 * any existing `checksum` member removed. Sealed records are
 * self-validating — a reader needs no side channel to detect a torn
 * or tampered record.
 */
JsonValue sealRecord(const JsonValue &record);

/** True iff @p record is an object whose `checksum` member verifies
 * against the rest of the record (the sealRecord invariant). */
bool sealedRecordValid(const JsonValue &record);

/**
 * Read and parse @p path, returning the document only when it is a
 * valid sealed record; nullopt on missing file, parse error, or seal
 * mismatch. The one gate every sealed-record consumer goes through.
 */
std::optional<JsonValue> readSealedJson(const std::string &path);

/** Canonical sidecar rendering of an artifact payload checksum:
 * "fnv1a64:" + 16 lowercase hex digits. */
std::string artifactChecksumString(std::uint64_t checksum);

} // namespace predilp

#endif // PREDILP_STORE_STORE_HH
