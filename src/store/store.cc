#include "store/store.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "store/sha256.hh"
#include "support/faultpoint.hh"
#include "support/logging.hh"
#include "support/retry.hh"

namespace predilp
{

namespace
{

namespace fs = std::filesystem;

/**
 * On-disk layout (all integers little-endian):
 *
 *   0   magic "PILPTRC1"
 *   8   u32  format version
 *   12  u32  chunk count
 *   16  u64  total file bytes (truncation check)
 *   24  u64  FNV-1a 64 checksum of bytes [32, fileBytes)
 *   32  meta: u64 recordCount, i64 exitValue, u64 memHash,
 *             u64 dynInstrs, u64 outputLen, u64 opsCount,
 *             u64 regPoolCount, i32 regBounds[3], u32 pad
 *   ...  chunk table: per chunk u64 entryCount, u64 memSize,
 *        u32 memCount, u32 pad
 *   ...  ops (29 bytes each), reg pool (5 bytes each), output bytes
 *   ...  zero padding to 8-byte file alignment
 *   ...  packed TraceEntry stream (4-byte aligned, mmap-replayable)
 *   ...  varint memory side stream
 */
constexpr char kMagic[8] = {'P', 'I', 'L', 'P', 'T', 'R', 'C', '1'};
constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kChecksumOffset = 24;
constexpr std::size_t kOpBytes = 29;
constexpr std::size_t kRegBytes = 5;

std::uint64_t
fnv1a64(const std::uint8_t *data, std::size_t len)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= data[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

// --- little-endian byte writer -------------------------------------

void
putU8(std::vector<std::uint8_t> &out, std::uint8_t v)
{
    out.push_back(v);
}

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putI64(std::vector<std::uint8_t> &out, std::int64_t v)
{
    putU64(out, static_cast<std::uint64_t>(v));
}

void
putI32(std::vector<std::uint8_t> &out, std::int32_t v)
{
    putU32(out, static_cast<std::uint32_t>(v));
}

void
putReg(std::vector<std::uint8_t> &out, Reg reg)
{
    putU8(out, static_cast<std::uint8_t>(reg.cls()));
    putI32(out, reg.idx());
}

// --- bounds-checked little-endian reader ---------------------------

struct Reader
{
    const std::uint8_t *p;
    const std::uint8_t *end;

    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end - p);
    }

    void
    need(std::size_t n) const
    {
        if (n > remaining())
            throw TraceCorruptError(
                "artifact section overruns the file");
    }

    std::uint8_t
    u8()
    {
        need(1);
        return *p++;
    }

    std::uint16_t
    u16()
    {
        need(2);
        std::uint16_t v = static_cast<std::uint16_t>(
            p[0] | (std::uint16_t{p[1]} << 8));
        p += 2;
        return v;
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t{p[i]} << (8 * i);
        p += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t{p[i]} << (8 * i);
        p += 8;
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

    Reg
    reg()
    {
        std::uint8_t cls = u8();
        std::int32_t idx = i32();
        if (cls > 2 || idx < -1)
            throw TraceCorruptError("artifact register out of range");
        if (idx < 0)
            return Reg();
        return Reg(static_cast<RegClass>(cls), idx);
    }
};

/** Fully parsed + validated artifact, referencing the mapped bytes. */
struct ParsedArtifact
{
    std::uint64_t recordCount = 0;
    RunResult run;
    std::array<int, 3> regBounds{};
    std::vector<StaticOp> ops;
    std::vector<Reg> regPool;
    std::vector<TraceBuffer::ChunkView> views;
    ArtifactInfo info;
};

/**
 * Validate every byte-level property of the artifact at @p data and
 * decode the metadata sections. Throws TraceCorruptError on any
 * mismatch; the entry/varint streams are left in place (zero-copy).
 */
ParsedArtifact
parseArtifact(const std::uint8_t *data, std::size_t size)
{
    if (size < kHeaderBytes)
        throw TraceCorruptError("artifact shorter than its header");
    if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0)
        throw TraceCorruptError("artifact magic mismatch");

    Reader header{data + sizeof(kMagic), data + kHeaderBytes};
    const std::uint32_t version = header.u32();
    const std::uint32_t chunkCount = header.u32();
    const std::uint64_t fileBytes = header.u64();
    const std::uint64_t checksum = header.u64();
    if (version != ArtifactStore::formatVersion)
        throw TraceCorruptError("artifact format version mismatch");
    if (fileBytes != size)
        throw TraceCorruptError("artifact length mismatch");
    if (chunkCount > (1u << 20))
        throw TraceCorruptError("artifact chunk count implausible");
    if (fnv1a64(data + kHeaderBytes, size - kHeaderBytes) != checksum)
        throw TraceCorruptError("artifact checksum mismatch");

    ParsedArtifact parsed;
    Reader r{data + kHeaderBytes, data + size};
    parsed.recordCount = r.u64();
    parsed.run.exitValue = r.i64();
    parsed.run.memHash = r.u64();
    parsed.run.dynInstrs = r.u64();
    const std::uint64_t outputLen = r.u64();
    const std::uint64_t opsCount = r.u64();
    const std::uint64_t regPoolCount = r.u64();
    for (int i = 0; i < 3; ++i)
        parsed.regBounds[static_cast<std::size_t>(i)] = r.i32();
    r.u32(); // pad

    if (opsCount > traceMaxStaticId + 1ull)
        throw TraceCorruptError("artifact ops count implausible");

    struct ChunkMeta
    {
        std::uint64_t entryCount;
        std::uint64_t memSize;
        std::uint32_t memCount;
    };
    std::vector<ChunkMeta> chunkMeta(chunkCount);
    std::uint64_t totalEntries = 0;
    std::uint64_t totalMemBytes = 0;
    for (ChunkMeta &meta : chunkMeta) {
        meta.entryCount = r.u64();
        meta.memSize = r.u64();
        meta.memCount = r.u32();
        r.u32(); // pad
        if (meta.entryCount > TraceBuffer::chunkEntries ||
            meta.memCount > meta.entryCount)
            throw TraceCorruptError(
                "artifact chunk table entry out of range");
        totalEntries += meta.entryCount;
        totalMemBytes += meta.memSize;
    }
    if (totalEntries != parsed.recordCount)
        throw TraceCorruptError(
            "artifact record count disagrees with chunk table");

    parsed.ops.resize(opsCount);
    for (StaticOp &op : parsed.ops) {
        op.addr = r.i64();
        op.regBegin = r.u32();
        op.srcRegCount = r.u16();
        op.predDestCount = r.u16();
        op.op = static_cast<Opcode>(r.u8());
        std::uint8_t kind = r.u8();
        if (kind > static_cast<std::uint8_t>(
                       StaticOp::Kind::CallRet))
            throw TraceCorruptError("artifact op kind out of range");
        op.kind = static_cast<StaticOp::Kind>(kind);
        std::uint8_t flags = r.u8();
        op.isBranch = (flags & 1) != 0;
        op.isLoad = (flags & 2) != 0;
        op.isStore = (flags & 4) != 0;
        op.isPredAll = (flags & 8) != 0;
        op.guard = r.reg();
        op.dest = r.reg();
        if (std::uint64_t{op.regBegin} + op.srcRegCount +
                op.predDestCount >
            regPoolCount)
            throw TraceCorruptError(
                "artifact op register range overruns the pool");
    }

    parsed.regPool.resize(regPoolCount);
    for (Reg &reg : parsed.regPool)
        reg = r.reg();

    r.need(outputLen);
    parsed.run.output.assign(reinterpret_cast<const char *>(r.p),
                             outputLen);
    r.p += outputLen;

    // Zero padding to the 8-byte-aligned entry stream.
    std::size_t consumed = static_cast<std::size_t>(r.p - data);
    std::size_t entriesOffset = (consumed + 7) & ~std::size_t{7};
    r.need(entriesOffset - consumed);
    r.p = data + entriesOffset;
    r.need(totalEntries * sizeof(TraceEntry));
    r.need(totalEntries * sizeof(TraceEntry) + totalMemBytes);
    if (entriesOffset + totalEntries * sizeof(TraceEntry) +
            totalMemBytes !=
        size)
        throw TraceCorruptError("artifact has trailing bytes");

    const auto *entries =
        reinterpret_cast<const TraceEntry *>(data + entriesOffset);
    const std::uint8_t *mem = data + entriesOffset +
                              totalEntries * sizeof(TraceEntry);
    parsed.views.reserve(chunkCount);
    for (const ChunkMeta &meta : chunkMeta) {
        TraceBuffer::ChunkView view;
        view.entries = entries;
        view.entryCount = static_cast<std::size_t>(meta.entryCount);
        view.memBytes = mem;
        view.memSize = static_cast<std::size_t>(meta.memSize);
        view.memCount = meta.memCount;
        entries += meta.entryCount;
        mem += meta.memSize;
        parsed.views.push_back(view);
    }

    parsed.info.version = version;
    parsed.info.records = parsed.recordCount;
    parsed.info.fileBytes = size;
    parsed.info.checksumOffset = kChecksumOffset;
    parsed.info.payloadChecksum = checksum;
    parsed.info.entriesOffset = entriesOffset;
    parsed.info.entriesBytes =
        static_cast<std::size_t>(totalEntries * sizeof(TraceEntry));
    parsed.info.memOffset =
        entriesOffset + parsed.info.entriesBytes;
    parsed.info.memBytes = static_cast<std::size_t>(totalMemBytes);
    return parsed;
}

/** Serialize @p buffer into the on-disk artifact byte image. */
std::vector<std::uint8_t>
serializeArtifact(const TraceBuffer &buffer)
{
    const StaticIndex &index = buffer.index();
    std::vector<std::uint8_t> out;
    std::uint64_t totalEntries = 0;
    std::uint64_t totalMemBytes = 0;
    const std::size_t chunkCount = buffer.chunkCount();
    for (std::size_t i = 0; i < chunkCount; ++i) {
        TraceBuffer::ChunkView view = buffer.chunk(i);
        totalEntries += view.entryCount;
        totalMemBytes += view.memSize;
    }
    out.reserve(kHeaderBytes + 128 + chunkCount * 24 +
                index.ops().size() * kOpBytes +
                index.regPool().size() * kRegBytes +
                buffer.run().output.size() +
                static_cast<std::size_t>(totalEntries) *
                    sizeof(TraceEntry) +
                static_cast<std::size_t>(totalMemBytes));

    for (char c : kMagic)
        out.push_back(static_cast<std::uint8_t>(c));
    putU32(out, ArtifactStore::formatVersion);
    putU32(out, static_cast<std::uint32_t>(chunkCount));
    putU64(out, 0); // fileBytes, patched below.
    putU64(out, 0); // checksum, patched below.

    putU64(out, buffer.size());
    putI64(out, buffer.run().exitValue);
    putU64(out, buffer.run().memHash);
    putU64(out, buffer.run().dynInstrs);
    putU64(out, buffer.run().output.size());
    putU64(out, index.ops().size());
    putU64(out, index.regPool().size());
    for (RegClass cls :
         {RegClass::Int, RegClass::Float, RegClass::Pred})
        putI32(out, index.regBound(cls));
    putU32(out, 0); // pad

    for (std::size_t i = 0; i < chunkCount; ++i) {
        TraceBuffer::ChunkView view = buffer.chunk(i);
        putU64(out, view.entryCount);
        putU64(out, view.memSize);
        putU32(out, view.memCount);
        putU32(out, 0); // pad
    }

    for (const StaticOp &op : index.ops()) {
        putI64(out, op.addr);
        putU32(out, op.regBegin);
        putU16(out, op.srcRegCount);
        putU16(out, op.predDestCount);
        putU8(out, static_cast<std::uint8_t>(op.op));
        putU8(out, static_cast<std::uint8_t>(op.kind));
        std::uint8_t flags = 0;
        if (op.isBranch)
            flags |= 1;
        if (op.isLoad)
            flags |= 2;
        if (op.isStore)
            flags |= 4;
        if (op.isPredAll)
            flags |= 8;
        putU8(out, flags);
        putReg(out, op.guard);
        putReg(out, op.dest);
    }

    for (Reg reg : index.regPool())
        putReg(out, reg);

    for (char c : buffer.run().output)
        out.push_back(static_cast<std::uint8_t>(c));

    while (out.size() % 8 != 0)
        out.push_back(0);

    for (std::size_t i = 0; i < chunkCount; ++i) {
        TraceBuffer::ChunkView view = buffer.chunk(i);
        const auto *bytes =
            reinterpret_cast<const std::uint8_t *>(view.entries);
        out.insert(out.end(), bytes,
                   bytes + view.entryCount * sizeof(TraceEntry));
    }
    for (std::size_t i = 0; i < chunkCount; ++i) {
        TraceBuffer::ChunkView view = buffer.chunk(i);
        out.insert(out.end(), view.memBytes,
                   view.memBytes + view.memSize);
    }

    // Patch the length and the payload checksum.
    std::vector<std::uint8_t> patch;
    putU64(patch, out.size());
    putU64(patch, fnv1a64(out.data() + kHeaderBytes,
                          out.size() - kHeaderBytes));
    std::memcpy(out.data() + 16, patch.data(), 16);
    return out;
}

/** RAII read-only file mapping: the loaded buffer's backing. */
class MappedFile
{
  public:
    MappedFile(void *data, std::size_t size)
        : data_(data), size_(size)
    {}

    ~MappedFile()
    {
        if (data_ != nullptr)
            ::munmap(data_, size_);
    }

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    const std::uint8_t *
    bytes() const
    {
        return static_cast<const std::uint8_t *>(data_);
    }

    std::size_t size() const { return size_; }

  private:
    void *data_;
    std::size_t size_;
};

/** Map @p path read-only; nullptr when absent or unmappable. */
std::shared_ptr<MappedFile>
mapFile(const std::string &path, bool &exists)
{
    // EINTR on open is a hiccup, not a cold artifact: retry with
    // backoff before reporting a miss.
    int fd = -1;
    if (!retryIo([&] {
            fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
            return fd >= 0;
        })) {
        exists = errno != ENOENT;
        return nullptr;
    }
    exists = true;
    if (faultpoints::poll("store.load.mmap") !=
        faultpoints::FaultAction::None) {
        // Injected mapping failure: behave exactly as if the kernel
        // refused the mmap — present-but-unmappable, which the
        // caller quarantines and recomputes.
        ::close(fd);
        return nullptr;
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
        ::close(fd);
        return nullptr;
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    void *data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (data == MAP_FAILED)
        return nullptr;
    return std::make_shared<MappedFile>(data, size);
}

/**
 * Advisory whole-store lock, held only around the final rename (and
 * quarantine moves) so concurrent writers publish one at a time.
 */
class StoreLock
{
  public:
    explicit StoreLock(const std::string &dir)
    {
        std::string path = dir + "/.lock";
        fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                     0644);
        if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~StoreLock()
    {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }

    StoreLock(const StoreLock &) = delete;
    StoreLock &operator=(const StoreLock &) = delete;

    bool held() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
};

std::atomic<std::uint64_t> tempSeq{0};

/**
 * Write all @p size bytes to @p fd, retrying transient errno
 * (EINTR/EAGAIN) with bounded backoff and resuming after partial
 * writes. @return false (errno set) on a non-transient failure or
 * exhausted retries.
 */
bool
writeAll(int fd, const std::uint8_t *data, std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        ssize_t n = -1;
        if (!retryIo([&] {
                n = ::write(fd, data + done, size - done);
                return n >= 0;
            })) {
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Stage @p size bytes at a temp sibling of @p path (POSIX write +
 * fsync via retryIo), then atomically rename into place under the
 * store lock of @p dir. The one publish primitive every durable
 * store file — artifact, sidecar, certified record — goes through.
 */
bool
publishBytesAtomically(const std::string &dir,
                       const std::string &path,
                       const std::uint8_t *data, std::size_t size)
{
    std::error_code ec;
    const std::string temp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(
            tempSeq.fetch_add(1, std::memory_order_relaxed));
    int fd = -1;
    if (!retryIo([&] {
            fd = ::open(temp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
            return fd >= 0;
        })) {
        return false;
    }
    bool staged = writeAll(fd, data, size);
    // Flush before publish: rename must never expose a file the
    // kernel could still lose the tail of on a crash.
    if (staged)
        staged = retryIo([&] { return ::fsync(fd) == 0; });
    ::close(fd);
    if (!staged) {
        fs::remove(temp, ec);
        return false;
    }
    bool renamed = false;
    {
        StoreLock lock(dir);
        renamed = retryIo(
            [&] { return ::rename(temp.c_str(), path.c_str()) == 0; });
    }
    if (!renamed) {
        fs::remove(temp, ec);
        return false;
    }
    return true;
}

/**
 * Read the payload checksum straight out of @p path's 32-byte header
 * (magic-checked, nothing else validated) — enough to test whether a
 * sidecar's `artifact_checksum` names this artifact.
 */
bool
readHeaderChecksum(const std::string &path, std::uint64_t &out)
{
    std::ifstream in(path, std::ios::binary);
    char header[kHeaderBytes];
    if (!in.read(header, kHeaderBytes))
        return false;
    if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0)
        return false;
    out = 0;
    for (std::size_t i = 0; i < 8; ++i)
        out |= std::uint64_t{static_cast<std::uint8_t>(
                   header[kChecksumOffset + i])}
               << (8 * i);
    return true;
}

/**
 * True iff @p sidecar (a sealed sidecar document) records exactly
 * @p payloadChecksum as its artifact pairing.
 */
bool
sidecarPairs(const JsonValue &sidecar, std::uint64_t payloadChecksum)
{
    if (!sidecar.isObject())
        return false;
    const JsonValue *recorded = sidecar.find("artifact_checksum");
    return recorded != nullptr &&
           recorded->kind() == JsonValue::Kind::String &&
           recorded->asString() ==
               artifactChecksumString(payloadChecksum);
}

} // namespace

std::string
artifactChecksumString(std::uint64_t checksum)
{
    static const char *hex = "0123456789abcdef";
    std::string out = "fnv1a64:";
    for (int shift = 60; shift >= 0; shift -= 4)
        out.push_back(hex[(checksum >> shift) & 0xf]);
    return out;
}

JsonValue
sealRecord(const JsonValue &record)
{
    std::vector<std::pair<std::string, JsonValue>> members;
    if (record.isObject()) {
        for (const auto &[key, value] : record.members())
            if (key != "checksum")
                members.emplace_back(key, value);
    }
    const std::string body =
        JsonValue::makeObject(members).dump();
    members.emplace_back(
        "checksum",
        JsonValue::makeString("sha256:" + sha256Hex(body)));
    return JsonValue::makeObject(std::move(members));
}

bool
sealedRecordValid(const JsonValue &record)
{
    if (!record.isObject())
        return false;
    const JsonValue *checksum = record.find("checksum");
    if (checksum == nullptr ||
        checksum->kind() != JsonValue::Kind::String)
        return false;
    std::vector<std::pair<std::string, JsonValue>> members;
    for (const auto &[key, value] : record.members())
        if (key != "checksum")
            members.emplace_back(key, value);
    const std::string body =
        JsonValue::makeObject(std::move(members)).dump();
    return checksum->asString() == "sha256:" + sha256Hex(body);
}

std::optional<JsonValue>
readSealedJson(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream text;
    text << in.rdbuf();
    try {
        JsonValue doc = JsonValue::parse(text.str());
        if (sealedRecordValid(doc))
            return doc;
    } catch (const std::exception &) {
        // Torn or truncated record: treated as absent, never served.
    }
    return std::nullopt;
}

ArtifactStore::ArtifactStore(std::string dir, StoreMode mode)
    : dir_(std::move(dir)), mode_(mode)
{
    panicIf(mode_ == StoreMode::Off,
            "ArtifactStore constructed with StoreMode::Off");
    panicIf(dir_.empty(), "ArtifactStore needs a directory");
    if (mode_ == StoreMode::ReadWrite) {
        std::error_code ec;
        fs::create_directories(fs::path(dir_) / "objects", ec);
    }
}

std::string
ArtifactStore::keyFor(const std::string &sourceBytes,
                      const std::string &cellKey)
{
    Sha256 h;
    // Length-prefix each field so (ab, c) never collides with
    // (a, bc).
    auto field = [&h](const std::string &bytes) {
        std::uint64_t len = bytes.size();
        std::uint8_t lenBytes[8];
        for (int i = 0; i < 8; ++i)
            lenBytes[i] = static_cast<std::uint8_t>(len >> (8 * i));
        h.update(lenBytes, 8);
        h.update(bytes);
    };
    field(sourceBytes);
    field(cellKey);
    field(std::to_string(formatVersion));
    return h.hex();
}

std::string
ArtifactStore::objectPath(const std::string &key) const
{
    // Two-level fan-out keeps directory listings short.
    return dir_ + "/objects/" + key.substr(0, 2) + "/" + key +
           ".trc";
}

std::shared_ptr<const TraceBuffer>
ArtifactStore::load(const std::string &key)
{
    const std::string path = objectPath(key);
    bool exists = false;
    std::shared_ptr<MappedFile> mapping = mapFile(path, exists);
    if (mapping == nullptr) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        if (exists) {
            // Present but unreadable/empty: corrupt, not cold.
            repairs_.fetch_add(1, std::memory_order_relaxed);
            quarantine(path);
        }
        return nullptr;
    }
    try {
        if (faultpoints::poll("store.load.validate") !=
            faultpoints::FaultAction::None) {
            // Injected validation failure takes the same exit as a
            // checksum mismatch, so quarantine-and-recompute runs
            // against a byte-perfect artifact on demand.
            throw TraceCorruptError(
                "injected fault at store.load.validate");
        }
        ParsedArtifact parsed =
            parseArtifact(mapping->bytes(), mapping->size());
        // A sidecar, when present, is load-bearing: it must be a
        // valid sealed record naming this exact artifact. A torn or
        // stale sidecar condemns the pair — quarantine moves both
        // and the recompute republishes them together.
        std::error_code ec;
        const std::string provPath = path + ".prov.json";
        if (fs::exists(provPath, ec)) {
            std::optional<JsonValue> prov = readSealedJson(provPath);
            if (!prov ||
                !sidecarPairs(*prov, parsed.info.payloadChecksum))
                throw TraceCorruptError(
                    "provenance sidecar torn or stale");
        }
        StaticIndex index(std::move(parsed.ops),
                          std::move(parsed.regPool),
                          parsed.regBounds);
        auto buffer = std::make_shared<TraceBuffer>(
            std::move(index), std::move(parsed.views),
            parsed.recordCount, std::move(parsed.run), mapping);
        hits_.fetch_add(1, std::memory_order_relaxed);
        bytesMapped_.fetch_add(mapping->size(),
                               std::memory_order_relaxed);
        if (mode_ == StoreMode::ReadWrite) {
            // Touch the artifact so the GC's LRU sweep sees use.
            fs::last_write_time(
                path, fs::file_time_type::clock::now(), ec);
        }
        return buffer;
    } catch (const TraceCorruptError &) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        repairs_.fetch_add(1, std::memory_order_relaxed);
        quarantine(path);
        return nullptr;
    }
}

bool
ArtifactStore::save(const std::string &key,
                    const TraceBuffer &buffer,
                    const std::string &provenanceJson)
{
    if (mode_ != StoreMode::ReadWrite)
        return false;
    const std::string path = objectPath(key);
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec)
        return false;

    std::vector<std::uint8_t> bytes = serializeArtifact(buffer);
    // The serialized header already carries the payload checksum;
    // echo it into the sidecar so readers can prove the pairing.
    std::uint64_t payloadChecksum = 0;
    for (std::size_t i = 0; i < 8; ++i)
        payloadChecksum |= std::uint64_t{bytes[kChecksumOffset + i]}
                           << (8 * i);

    // A torn write publishes a truncated image the loader must catch
    // on checksum; a thrown write degrades to a cold cache.
    std::size_t publishBytes = bytes.size();
    switch (faultpoints::poll("store.publish.write")) {
      case faultpoints::FaultAction::ShortWrite:
        publishBytes /= 2;
        break;
      case faultpoints::FaultAction::Throw:
        return false;
      default:
        break;
    }
    const std::string temp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(
            tempSeq.fetch_add(1, std::memory_order_relaxed));
    {
        int fd = -1;
        if (!retryIo([&] {
                fd = ::open(temp.c_str(),
                            O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                            0644);
                return fd >= 0;
            })) {
            return false;
        }
        bool staged = writeAll(fd, bytes.data(), publishBytes);
        // Flush before publish: rename must never expose a file the
        // kernel could still lose the tail of on a crash.
        if (staged)
            staged = retryIo([&] { return ::fsync(fd) == 0; });
        ::close(fd);
        if (!staged) {
            fs::remove(temp, ec);
            return false;
        }
    }

    // The sidecar publishes BEFORE the artifact rename: at no kill
    // point can the canonical artifact exist without durable, sealed
    // provenance. The reverse window — a fresh sidecar next to a
    // stale or absent artifact — is closed by the load-path pairing
    // check on artifact_checksum.
    if (!provenanceJson.empty() &&
        !publishProvenance(path, provenanceJson, payloadChecksum)) {
        fs::remove(temp, ec);
        return false;
    }

    // Crash here (via the fault point) dies with the staged temp on
    // disk but the canonical path untouched — the exact mid-publish
    // window the GC and retrying readers must tolerate.
    if (faultpoints::poll("store.publish.rename") !=
        faultpoints::FaultAction::None) {
        fs::remove(temp, ec);
        return false;
    }
    bool renamed = false;
    {
        StoreLock lock(dir_);
        renamed = retryIo(
            [&] { return ::rename(temp.c_str(), path.c_str()) == 0; });
    }
    if (!renamed) {
        fs::remove(temp, ec);
        return false;
    }
    writes_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
ArtifactStore::publishProvenance(
    const std::string &path, const std::string &provenanceJson,
    std::uint64_t payloadChecksum) const
{
    JsonValue prov;
    try {
        prov = JsonValue::parse(provenanceJson);
    } catch (const std::exception &) {
        return false;
    }
    if (!prov.isObject())
        return false;
    std::vector<std::pair<std::string, JsonValue>> members;
    for (const auto &[key, value] : prov.members())
        if (key != "artifact_checksum" && key != "checksum")
            members.emplace_back(key, value);
    members.emplace_back(
        "artifact_checksum",
        JsonValue::makeString(
            artifactChecksumString(payloadChecksum)));
    const std::string payload =
        sealRecord(JsonValue::makeObject(std::move(members)))
            .dump() +
        "\n";

    // A torn sidecar fails the seal on read; a thrown publish aborts
    // the whole save so the artifact never lands unprovenanced.
    std::size_t publishBytes = payload.size();
    switch (faultpoints::poll("store.publish.prov")) {
      case faultpoints::FaultAction::ShortWrite:
        publishBytes /= 2;
        break;
      case faultpoints::FaultAction::Throw:
        return false;
      default:
        break;
    }
    return publishBytesAtomically(
        dir_, path + ".prov.json",
        reinterpret_cast<const std::uint8_t *>(payload.data()),
        publishBytes);
}

std::string
ArtifactStore::loadProvenance(const std::string &key) const
{
    const std::string path = objectPath(key);
    std::optional<JsonValue> prov =
        readSealedJson(path + ".prov.json");
    if (!prov)
        return "";
    // An orphan sidecar (artifact gone) or a stale one (artifact
    // republished under a writer that died before the sidecar) is
    // never served: the pairing must verify against the bytes on
    // disk right now.
    std::uint64_t payloadChecksum = 0;
    if (!readHeaderChecksum(path, payloadChecksum) ||
        !sidecarPairs(*prov, payloadChecksum))
        return "";
    return prov->dump() + "\n";
}

void
ArtifactStore::quarantine(const std::string &path) const
{
    // Never trust — and never re-read — a corrupt artifact. In
    // read-only mode leave the file for a writer to repair.
    if (mode_ != StoreMode::ReadWrite)
        return;
    std::error_code ec;
    fs::path qdir = fs::path(dir_) / "quarantine";
    fs::create_directories(qdir, ec);
    if (ec)
        return;
    std::string name =
        fs::path(path).filename().string() + "." +
        std::to_string(::getpid()) + "." +
        std::to_string(
            tempSeq.fetch_add(1, std::memory_order_relaxed)) +
        ".bad";
    StoreLock lock(dir_);
    fs::rename(path, qdir / name, ec);
    if (ec)
        fs::remove(path, ec); // last resort: drop it.
    // The sidecar is condemned with its artifact — provenance must
    // never outlive the bytes it describes, or a recomputed artifact
    // could pair with stale provenance.
    const std::string provPath = path + ".prov.json";
    ec.clear();
    fs::rename(provPath, qdir / (name + ".prov.json"), ec);
    if (ec)
        fs::remove(provPath, ec);
}

std::string
ArtifactStore::resultPath(const std::string &key) const
{
    // Same two-level fan-out as objects/, separate root so trace GC
    // (which evicts *.trc by size) never competes with the small
    // certified records.
    return dir_ + "/results/" + key.substr(0, 2) + "/" + key +
           ".cert.json";
}

bool
ArtifactStore::saveResult(const std::string &key,
                          const JsonValue &record)
{
    if (mode_ != StoreMode::ReadWrite)
        return false;
    const std::string path = resultPath(key);
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec)
        return false;
    const std::string payload = sealRecord(record).dump() + "\n";
    // A torn record fails its seal on read and is re-published by
    // the next evaluation of the same cell; a thrown publish just
    // skips the record.
    std::size_t publishBytes = payload.size();
    switch (faultpoints::poll("store.publish.result")) {
      case faultpoints::FaultAction::ShortWrite:
        publishBytes /= 2;
        break;
      case faultpoints::FaultAction::Throw:
        return false;
      default:
        break;
    }
    return publishBytesAtomically(
        dir_, path,
        reinterpret_cast<const std::uint8_t *>(payload.data()),
        publishBytes);
}

std::string
ArtifactStore::loadResult(const std::string &key) const
{
    std::optional<JsonValue> record =
        readSealedJson(resultPath(key));
    return record ? record->dump() + "\n" : "";
}

StatsSnapshot
ArtifactStore::stats() const
{
    StatsSnapshot s;
    s.setCounter("store.hit", hits());
    s.setCounter("store.miss", misses());
    s.setCounter("store.repair", repairs());
    s.setCounter("store.write", writes());
    s.setCounter("store.bytes_mapped", bytesMapped());
    return s;
}

std::optional<ArtifactInfo>
inspectArtifact(const std::string &path)
{
    bool exists = false;
    std::shared_ptr<MappedFile> mapping = mapFile(path, exists);
    if (mapping == nullptr)
        return std::nullopt;
    try {
        return parseArtifact(mapping->bytes(), mapping->size())
            .info;
    } catch (const TraceCorruptError &) {
        return std::nullopt;
    }
}

} // namespace predilp
