/**
 * @file
 * Minimal SHA-256 (FIPS 180-4), used by the artifact store to derive
 * content-addressed keys from (source bytes, cell key, format
 * version). Self-contained — no external crypto dependency — and
 * only used for cache addressing, never for security decisions.
 */

#ifndef PREDILP_STORE_SHA256_HH
#define PREDILP_STORE_SHA256_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace predilp
{

/** Incremental SHA-256 hasher. */
class Sha256
{
  public:
    Sha256();

    /** Absorb @p data. */
    void update(const void *data, std::size_t len);
    void update(std::string_view data)
    {
        update(data.data(), data.size());
    }

    /** Finish and return the 32-byte digest. Call at most once. */
    std::array<std::uint8_t, 32> digest();

    /** Finish and return the digest as 64 lowercase hex chars. */
    std::string hex();

  private:
    void compress(const std::uint8_t *block);

    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, 64> buffer_;
    std::size_t bufferLen_ = 0;
    std::uint64_t totalBytes_ = 0;
};

/** One-shot convenience: SHA-256 of @p data as lowercase hex. */
std::string sha256Hex(std::string_view data);

} // namespace predilp

#endif // PREDILP_STORE_SHA256_HH
