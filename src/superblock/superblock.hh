/**
 * @file
 * Superblock formation (Hwu et al., "The Superblock: an effective
 * technique for VLIW and superscalar compilation") — the baseline
 * compilation model of the paper. Profile-selected traces are turned
 * into single-entry multiple-exit blocks via tail duplication and
 * merging; speculation happens later in the scheduler.
 */

#ifndef PREDILP_SUPERBLOCK_SUPERBLOCK_HH
#define PREDILP_SUPERBLOCK_SUPERBLOCK_HH

#include "analysis/profile.hh"
#include "ir/program.hh"
#include "opt/pass.hh"

namespace predilp
{

/** Tuning knobs for trace selection. */
struct SuperblockOptions
{
    /** Minimum execution count for a block to seed or join a trace. */
    std::uint64_t minCount = 32;

    /** Minimum branch probability to extend a trace along an edge. */
    double minProb = 0.6;

    /** Maximum blocks per trace. */
    std::size_t maxBlocks = 24;

    /** Maximum instructions per formed superblock. */
    std::size_t maxInstrs = 256;
};

/** Statistics reported by formation, for tests and logging. */
struct SuperblockStats
{
    int tracesFormed = 0;
    int blocksMerged = 0;
    int blocksDuplicated = 0;
};

/**
 * Clone @p src into a fresh block (fresh instruction ids, identical
 * operands and targets). Shared by superblock tail duplication and
 * hyperblock formation.
 * @return the clone's id.
 */
BlockId cloneBlock(Function &fn, BlockId src);

/**
 * Rewrite every control edge from @p from that targets @p oldTarget
 * so it targets @p newTarget (branch targets, jump targets, and the
 * fallthrough field).
 */
void retargetEdges(Function &fn, BlockId from, BlockId oldTarget,
                   BlockId newTarget);

/**
 * Form superblocks in @p fn using @p profile.
 * The function must be in explicit-control form or fallthrough form;
 * the result keeps the same external behavior.
 */
SuperblockStats formSuperblocks(Function &fn,
                                const FunctionProfile &profile,
                                const SuperblockOptions &opts = {});

/** formSuperblocks over every function with a profile entry. */
SuperblockStats formSuperblocks(Program &prog,
                                const ProgramProfile &profile,
                                const SuperblockOptions &opts = {});

/**
 * "superblock.form": formation as a Pass consuming the pre-formation
 * PassContext::profile (no-op when no profile ran). Counters:
 * superblock.form.traces / .blocks_merged / .blocks_duplicated.
 */
std::unique_ptr<Pass>
createSuperblockFormationPass(SuperblockOptions opts = {});

} // namespace predilp

#endif // PREDILP_SUPERBLOCK_SUPERBLOCK_HH
