#include "superblock/superblock.hh"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/cfg.hh"
#include "support/logging.hh"

namespace predilp
{

namespace
{

/** One outgoing edge of a block, with its estimated dynamic count. */
struct EdgeCount
{
    BlockId target = invalidBlock;
    std::uint64_t count = 0;
};

/**
 * Estimate per-edge execution counts of @p bb from the profile: a
 * conditional branch's edge count is its taken count; the terminal
 * edge (unguarded jump or fallthrough) gets the remaining weight.
 */
std::vector<EdgeCount>
edgeCounts(const FunctionProfile &profile, const BasicBlock &bb)
{
    std::vector<EdgeCount> edges;
    std::uint64_t remaining = profile.blockCount(bb.id());
    for (const auto &instr : bb.instrs()) {
        if (instr.isCondBranch() ||
            (instr.isJump() && instr.guarded())) {
            std::uint64_t taken = profile.takenCount(instr.id());
            taken = std::min(taken, remaining);
            edges.push_back(EdgeCount{instr.target(), taken});
            remaining -= taken;
        } else if (instr.isJump()) {
            edges.push_back(EdgeCount{instr.target(), remaining});
            return edges;
        } else if (instr.isRet()) {
            return edges;
        }
    }
    if (bb.fallthrough() != invalidBlock)
        edges.push_back(EdgeCount{bb.fallthrough(), remaining});
    return edges;
}

/** Trace selection and formation for one function. */
class SuperblockFormer
{
  public:
    SuperblockFormer(Function &fn, const FunctionProfile &profile,
                     const SuperblockOptions &opts)
        : fn_(fn), profile_(profile), opts_(opts)
    {}

    SuperblockStats
    run()
    {
        computeBestEdges();
        std::vector<BlockId> seeds = fn_.layout();
        std::stable_sort(seeds.begin(), seeds.end(),
                         [&](BlockId a, BlockId b) {
                             return profile_.blockCount(a) >
                                    profile_.blockCount(b);
                         });

        std::vector<std::vector<BlockId>> traces;
        for (BlockId seed : seeds) {
            if (visited_.count(seed) != 0)
                continue;
            if (profile_.blockCount(seed) < opts_.minCount)
                continue;
            traces.push_back(growTrace(seed));
        }

        for (auto &trace : traces) {
            if (trace.size() >= 2)
                formOne(trace);
        }
        fn_.pruneUnreachable();
        return stats_;
    }

  private:
    void
    computeBestEdges()
    {
        // Most likely successor of each block, and the heaviest
        // predecessor edge of each block (for the mutual-most-likely
        // test that keeps traces from swallowing merge points).
        bestSucc_.assign(fn_.numBlockIds(), invalidBlock);
        bestPred_.assign(fn_.numBlockIds(), invalidBlock);
        std::vector<std::uint64_t> bestPredCount(fn_.numBlockIds(),
                                                 0);

        for (BlockId id : fn_.layout()) {
            const BasicBlock *bb = fn_.block(id);
            std::uint64_t weight = profile_.blockCount(id);
            auto edges = edgeCounts(profile_, *bb);

            EdgeCount best;
            for (const auto &edge : edges) {
                if (edge.count > best.count ||
                    best.target == invalidBlock) {
                    // Prefer higher counts; first edge on ties.
                    if (best.target == invalidBlock ||
                        edge.count > best.count) {
                        best = edge;
                    }
                }
                auto t = static_cast<std::size_t>(edge.target);
                if (edge.count > bestPredCount[t] ||
                    bestPred_[t] == invalidBlock) {
                    if (bestPred_[t] == invalidBlock ||
                        edge.count > bestPredCount[t]) {
                        bestPred_[t] = id;
                        bestPredCount[t] = edge.count;
                    }
                }
            }

            if (best.target != invalidBlock && weight > 0 &&
                weight >= opts_.minCount) {
                double prob = static_cast<double>(best.count) /
                              static_cast<double>(weight);
                if (prob >= opts_.minProb)
                    bestSucc_[static_cast<std::size_t>(id)] =
                        best.target;
            }
        }
    }

    std::vector<BlockId>
    growTrace(BlockId seed)
    {
        std::vector<BlockId> trace{seed};
        visited_.insert(seed);

        // Grow forward along mutually-most-likely edges.
        while (trace.size() < opts_.maxBlocks) {
            BlockId last = trace.back();
            BlockId next =
                bestSucc_[static_cast<std::size_t>(last)];
            if (next == invalidBlock || visited_.count(next) != 0)
                break;
            if (bestPred_[static_cast<std::size_t>(next)] != last)
                break;
            if (profile_.blockCount(next) < opts_.minCount)
                break;
            trace.push_back(next);
            visited_.insert(next);
        }

        // Grow backward from the seed the same way.
        while (trace.size() < opts_.maxBlocks) {
            BlockId first = trace.front();
            BlockId prev =
                bestPred_[static_cast<std::size_t>(first)];
            if (prev == invalidBlock || visited_.count(prev) != 0)
                break;
            if (bestSucc_[static_cast<std::size_t>(prev)] != first)
                break;
            if (profile_.blockCount(prev) < opts_.minCount)
                break;
            trace.insert(trace.begin(), prev);
            visited_.insert(prev);
        }
        return trace;
    }

    /** Remove side entrances into trace[i..] by duplicating that
     * suffix and retargeting off-trace predecessors to the copy. */
    void
    removeSideEntrances(std::vector<BlockId> &trace)
    {
        for (std::size_t i = 1; i < trace.size(); ++i) {
            CfgInfo cfg(fn_);
            std::vector<BlockId> offTrace;
            for (BlockId pred : cfg.preds(trace[i])) {
                if (pred != trace[i - 1])
                    offTrace.push_back(pred);
            }
            if (offTrace.empty())
                continue;

            // Clone the suffix trace[i..] once and chain the clones.
            std::vector<BlockId> clones;
            for (std::size_t j = i; j < trace.size(); ++j) {
                clones.push_back(cloneBlock(fn_, trace[j]));
                stats_.blocksDuplicated += 1;
            }
            for (std::size_t j = 0; j + 1 < clones.size(); ++j) {
                retargetEdges(fn_, clones[j], trace[i + j + 1],
                              clones[j + 1]);
            }
            for (BlockId pred : offTrace) {
                retargetEdges(fn_, pred, trace[i], clones[0]);
                // If the predecessor lies inside the duplicated
                // suffix, its clone has the same edge; point that
                // copy at the clone chain too so the chain stays
                // self-contained.
                for (std::size_t j = i; j < trace.size(); ++j) {
                    if (trace[j] == pred) {
                        retargetEdges(fn_, clones[j - i], trace[i],
                                      clones[0]);
                    }
                }
            }
        }
    }

    /** Make A transfer to B by fallthrough so B can be appended. */
    void
    prepareAppend(BasicBlock *a, BlockId b)
    {
        auto &instrs = a->instrs();
        if (a->fallthrough() == b) {
            a->setFallthrough(invalidBlock);
            return;
        }
        panicIf(instrs.empty(), "prepareAppend: empty predecessor");
        Instruction &last = instrs.back();
        if (last.isJump() && !last.guarded() && last.target() == b) {
            instrs.pop_back();
            // A conditional branch to b may remain just before the
            // jump; if so it is now redundant but harmless.
            if (!instrs.empty()) {
                Instruction &prev = instrs.back();
                if (prev.isCondBranch() && !prev.guarded() &&
                    prev.target() == b) {
                    instrs.pop_back();
                }
            }
            return;
        }
        if (last.isCondBranch() && !last.guarded() &&
            last.target() == b) {
            BlockId other = a->fallthrough();
            panicIf(other == invalidBlock,
                    "conditional branch with no fallthrough");
            last.setOp(invertBranch(last.op()));
            last.setTarget(other);
            a->setFallthrough(invalidBlock);
            return;
        }
        if (instrs.size() >= 2 && last.isJump() && !last.guarded()) {
            Instruction &prev = instrs[instrs.size() - 2];
            if (prev.isCondBranch() && !prev.guarded() &&
                prev.target() == b) {
                prev.setOp(invertBranch(prev.op()));
                prev.setTarget(last.target());
                instrs.pop_back();
                return;
            }
        }
        panic("prepareAppend: trace edge is not last transfer of ",
              a->name());
    }

    void
    formOne(std::vector<BlockId> &trace)
    {
        removeSideEntrances(trace);

        BasicBlock *head = fn_.block(trace.front());
        for (std::size_t i = 1; i < trace.size(); ++i) {
            BasicBlock *next = fn_.block(trace[i]);
            if (head->instrs().size() + next->instrs().size() >
                opts_.maxInstrs) {
                break;
            }
            prepareAppend(head, trace[i]);
            for (auto &instr : next->instrs())
                head->instrs().push_back(std::move(instr));
            next->instrs().clear();
            head->setFallthrough(next->fallthrough());
            next->setFallthrough(invalidBlock);
            stats_.blocksMerged += 1;
        }
        head->setKind(BlockKind::Superblock);
        stats_.tracesFormed += 1;
    }

    Function &fn_;
    const FunctionProfile &profile_;
    const SuperblockOptions &opts_;
    std::vector<BlockId> bestSucc_;
    std::vector<BlockId> bestPred_;
    std::set<BlockId> visited_;
    SuperblockStats stats_;
};

} // namespace

BlockId
cloneBlock(Function &fn, BlockId src)
{
    const BasicBlock *orig = fn.block(src);
    std::string name = orig->name() + ".dup";
    // Copy instructions first: newBlock may invalidate the pointer.
    std::vector<Instruction> copies = orig->instrs();
    BlockId ft = orig->fallthrough();
    BlockKind kind = orig->kind();

    BasicBlock *copy = fn.newBlock(name);
    for (auto &instr : copies) {
        instr.setId(fn.nextInstrId());
        copy->instrs().push_back(std::move(instr));
    }
    copy->setFallthrough(ft);
    copy->setKind(kind);
    return copy->id();
}

void
retargetEdges(Function &fn, BlockId from, BlockId oldTarget,
              BlockId newTarget)
{
    BasicBlock *bb = fn.block(from);
    for (auto &instr : bb->instrs()) {
        if ((instr.isCondBranch() || instr.isJump()) &&
            instr.target() == oldTarget) {
            instr.setTarget(newTarget);
        }
    }
    if (bb->fallthrough() == oldTarget)
        bb->setFallthrough(newTarget);
}

SuperblockStats
formSuperblocks(Function &fn, const FunctionProfile &profile,
                const SuperblockOptions &opts)
{
    return SuperblockFormer(fn, profile, opts).run();
}

SuperblockStats
formSuperblocks(Program &prog, const ProgramProfile &profile,
                const SuperblockOptions &opts)
{
    SuperblockStats total;
    for (auto &fn : prog.functions()) {
        const FunctionProfile *fp = profile.find(fn->name());
        if (fp == nullptr)
            continue;
        SuperblockStats stats = formSuperblocks(*fn, *fp, opts);
        total.tracesFormed += stats.tracesFormed;
        total.blocksMerged += stats.blocksMerged;
        total.blocksDuplicated += stats.blocksDuplicated;
    }
    return total;
}

} // namespace predilp
