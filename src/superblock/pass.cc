#include "superblock/superblock.hh"

namespace predilp
{

namespace
{

class SuperblockFormationPass : public Pass
{
  public:
    explicit SuperblockFormationPass(SuperblockOptions opts)
        : opts_(opts)
    {}

    std::string name() const override { return "superblock.form"; }

    PassResult
    run(Program &prog, PassContext &ctx) override
    {
        PassResult result;
        if (!ctx.profile)
            return result;
        SuperblockStats stats =
            formSuperblocks(prog, *ctx.profile, opts_);
        ctx.stats.counter("superblock.form.traces")
            .add(static_cast<std::uint64_t>(stats.tracesFormed));
        ctx.stats.counter("superblock.form.blocks_merged")
            .add(static_cast<std::uint64_t>(stats.blocksMerged));
        ctx.stats.counter("superblock.form.blocks_duplicated")
            .add(static_cast<std::uint64_t>(stats.blocksDuplicated));
        result.changes =
            static_cast<std::uint64_t>(stats.tracesFormed);
        return result;
    }

  private:
    SuperblockOptions opts_;
};

} // namespace

std::unique_ptr<Pass>
createSuperblockFormationPass(SuperblockOptions opts)
{
    return std::make_unique<SuperblockFormationPass>(opts);
}

} // namespace predilp
