/**
 * @file
 * The differential oracle: compile one generated ILC program under
 * every processor model (plus seed-rotated ablation flips), run the
 * IR verifier after every pass, emulate each compiled program, and
 * assert that all of them agree bit-for-bit on the architectural
 * result — exit value, output bytes, and the final-memory hash —
 * with the classically-optimized reference run, and that pricing a
 * captured trace reproduces the capturing run's result.
 *
 * Any disagreement or abnormal path surfaces as a typed exception
 * (CompileError, VerifyError, EmuTrap, DivergenceError), which the
 * oracle converts into an OracleFailure record plus a self-contained
 * reproducer file, so a failing seed is diagnosable offline.
 */

#ifndef PREDILP_FUZZ_ORACLE_HH
#define PREDILP_FUZZ_ORACLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/generator.hh"

namespace predilp
{

/** Knobs for one oracle invocation. */
struct OracleOptions
{
    /** Emulator fuel per run; generated programs stay far under. */
    std::uint64_t fuel = 50'000'000ull;
    /** Run the IR verifier after every compiler pass. */
    bool verifyEachPass = true;
    /**
     * Also compile under two seed-rotated single-flag ablation
     * flips (on top of the three default-flag models), so every
     * optional optimization is differentially exercised across the
     * seed corpus without a per-seed config explosion.
     */
    bool checkAblations = true;
    /** Directory for reproducer files ("" = don't write any). */
    std::string reproducerDir;
    GeneratorOptions generator;
};

/** One failing (seed, configuration) cell. */
struct OracleFailure
{
    std::uint64_t seed = 0;
    std::string config; ///< e.g. "FullPred" or "CondMove/no-orTree".
    /** Taxonomy label from classifyException(). */
    std::string kind;
    std::string message;
    std::string reproducerPath; ///< "" when none was written.
};

/** Everything one seed's oracle run produced. */
struct OracleResult
{
    std::uint64_t seed = 0;
    std::uint64_t configsRun = 0; ///< configurations compared.
    std::vector<OracleFailure> failures;

    bool ok() const { return failures.empty(); }
};

/** Run the full differential comparison for @p seed. */
OracleResult runDifferentialOracle(std::uint64_t seed,
                                   const OracleOptions &opts = {});

} // namespace predilp

#endif // PREDILP_FUZZ_ORACLE_HH
