#include "fuzz/generator.hh"

#include <algorithm>
#include <sstream>
#include <vector>

#include "support/rng.hh"

namespace predilp
{

namespace
{

/** One global or local integer array the program may index. */
struct ArrayInfo
{
    std::string name;
    int size = 0; ///< power of two, so `& (size - 1)` is the mask.
};

/**
 * Grows one random program. All state is derived from the seed's
 * Rng, so the same seed always yields byte-identical source.
 */
class ProgramBuilder
{
  public:
    ProgramBuilder(std::uint64_t seed, const GeneratorOptions &opts)
        : rng_(seed), opts_(opts)
    {}

    std::string
    build()
    {
        emitGlobals();
        const int helpers =
            static_cast<int>(rng_.nextBelow(
                static_cast<std::uint64_t>(opts_.maxHelpers) + 1));
        for (int i = 0; i < helpers; ++i)
            emitHelper(i);
        emitMain();
        return os_.str();
    }

  private:
    // --- naming ---

    std::string
    freshName(const char *prefix)
    {
        return std::string(prefix) + std::to_string(nameCounter_++);
    }

    void
    indent()
    {
        for (int i = 0; i < indent_; ++i)
            os_ << "    ";
    }

    // --- globals ---

    void
    emitGlobals()
    {
        // Fixed input buffer every program reads its input into.
        os_ << "byte ibuf[256];\n";
        os_ << "int ilen = 0;\n";
        arrays_.push_back({"ibuf", 256});

        const int intArrays =
            1 + static_cast<int>(rng_.nextBelow(2));
        for (int i = 0; i < intArrays; ++i) {
            ArrayInfo info;
            info.name = freshName("ga");
            info.size = 16 << rng_.nextBelow(3); // 16/32/64.
            arrays_.push_back(info);
            os_ << "int " << info.name << "[" << info.size << "];\n";
        }
        if (rng_.nextBool(0.5)) {
            ArrayInfo info;
            info.name = freshName("gb");
            info.size = 64 << rng_.nextBelow(2); // 64/128.
            arrays_.push_back(info);
            os_ << "byte " << info.name << "[" << info.size
                << "];\n";
        }

        const int intGlobals =
            2 + static_cast<int>(rng_.nextBelow(3));
        for (int i = 0; i < intGlobals; ++i) {
            std::string name = freshName("g");
            intGlobals_.push_back(name);
            os_ << "int " << name << " = "
                << rng_.nextRange(-99, 99) << ";\n";
        }
        if (opts_.useFloats) {
            std::string name = freshName("fg");
            floatGlobals_.push_back(name);
            os_ << "float " << name << " = " << floatLiteral()
                << ";\n";
        }
        os_ << "\n";
    }

    // --- functions ---

    void
    emitHelper(int index)
    {
        std::string name = "h" + std::to_string(index);
        os_ << "int " << name << "(int a" << index << ", int b"
            << index << ") {\n";
        indent_ = 1;
        // Helpers never call other helpers: a call site inside a
        // loop multiplies the callee's cost by the trip product, so
        // keeping call depth at one bounds the whole program's
        // dynamic cost at (main trips) x (call sites) x (helper
        // cost), comfortably under the oracle's fuel.
        ScopeState scope = enterFunction(
            {"a" + std::to_string(index),
             "b" + std::to_string(index)},
            /*iterBudget=*/32, /*callBudget=*/0);
        const int stmts =
            2 + static_cast<int>(rng_.nextBelow(4));
        for (int i = 0; i < stmts; ++i)
            emitStmt(1);
        indent();
        os_ << "return " << intExpr(opts_.maxExprDepth) << ";\n";
        leaveFunction(scope);
        indent_ = 0;
        os_ << "}\n\n";
        helpers_.push_back(name);
    }

    void
    emitMain()
    {
        os_ << "int main() {\n";
        indent_ = 1;
        ScopeState scope =
            enterFunction({}, /*iterBudget=*/512, /*callBudget=*/6);
        indent();
        os_ << "ilen = readblock(ibuf, 0, 256);\n";
        const int stmts =
            3 + static_cast<int>(rng_.nextBelow(
                    static_cast<std::uint64_t>(opts_.maxTopStmts)));
        for (int i = 0; i < stmts; ++i)
            emitStmt(1);
        emitChecksumEpilogue();
        leaveFunction(scope);
        indent_ = 0;
        os_ << "}\n";
    }

    /**
     * Fold every observable piece of state — globals, arrays, the
     * live locals — into three output bytes and the exit value, so
     * any architectural difference between models surfaces in the
     * oracle's output/exit comparison even before the memory hash.
     */
    void
    emitChecksumEpilogue()
    {
        indent();
        os_ << "int cs = ilen;\n";
        for (const std::string &g : intGlobals_) {
            indent();
            os_ << "cs = cs * 31 + " << g << ";\n";
        }
        for (const std::string &v : intLocals_) {
            indent();
            os_ << "cs = cs * 31 + " << v << ";\n";
        }
        for (const std::string &f : floatLocals_) {
            indent();
            os_ << "cs = cs * 31 + (" << f << " < "
                << floatLiteral() << " ? 1 : 2);\n";
        }
        for (const ArrayInfo &arr : arrays_) {
            std::string idx = freshName("ci");
            indent();
            os_ << "for (int " << idx << " = 0; " << idx << " < "
                << arr.size << "; " << idx << " = " << idx
                << " + 1) { cs = cs * 33 + " << arr.name << "["
                << idx << "]; }\n";
        }
        indent();
        os_ << "putc(cs);\n";
        indent();
        os_ << "putc(cs >> 8);\n";
        indent();
        os_ << "putc(cs >> 16);\n";
        indent();
        os_ << "return cs & 255;\n";
    }

    // --- scope bookkeeping ---

    struct ScopeState
    {
        std::size_t intLocals = 0;
        std::size_t floatLocals = 0;
        std::size_t forbidden = 0;
    };

    ScopeState
    enterFunction(std::vector<std::string> params, int iterBudget,
                  int callBudget)
    {
        ScopeState saved{intLocals_.size(), floatLocals_.size(),
                         forbidden_.size()};
        for (std::string &p : params)
            intLocals_.push_back(std::move(p));
        iterBudget_ = iterBudget;
        callBudget_ = callBudget;
        loopKinds_.clear();
        return saved;
    }

    void
    leaveFunction(const ScopeState &saved)
    {
        intLocals_.resize(saved.intLocals);
        floatLocals_.resize(saved.floatLocals);
        forbidden_.resize(saved.forbidden);
    }

    bool
    isForbidden(const std::string &name) const
    {
        for (const std::string &f : forbidden_) {
            if (f == name)
                return true;
        }
        return false;
    }

    /** A random assignable int variable (local or global). */
    std::string
    assignTarget()
    {
        // Collect candidates each time: scopes shift as statements
        // are emitted, and induction variables are off limits.
        std::vector<const std::string *> candidates;
        for (const std::string &v : intLocals_) {
            if (!isForbidden(v))
                candidates.push_back(&v);
        }
        for (const std::string &g : intGlobals_)
            candidates.push_back(&g);
        return *candidates[rng_.nextBelow(candidates.size())];
    }

    // --- expressions ---

    std::string
    floatLiteral()
    {
        std::ostringstream os;
        os << rng_.nextRange(-9, 9) << '.'
           << rng_.nextBelow(10) << rng_.nextBelow(10);
        return os.str();
    }

    /** A random in-bounds array access, e.g. `ga0[(e) & 63]`. */
    std::string
    arrayAccess(int exprDepth)
    {
        const ArrayInfo &arr =
            arrays_[rng_.nextBelow(arrays_.size())];
        return arr.name + "[(" + intExpr(exprDepth) + ") & " +
               std::to_string(arr.size - 1) + "]";
    }

    std::string
    intLeaf()
    {
        switch (rng_.nextBelow(6)) {
          case 0:
            return std::to_string(rng_.nextRange(-64, 64));
          case 1:
            if (!intLocals_.empty())
                return intLocals_[rng_.nextBelow(
                    intLocals_.size())];
            [[fallthrough]];
          case 2:
            return intGlobals_[rng_.nextBelow(
                intGlobals_.size())];
          case 3:
            return "ilen";
          case 4:
            return arrayAccess(0);
          default:
            return std::to_string(rng_.nextRange(0, 255));
        }
    }

    std::string
    floatExpr(int depth)
    {
        if (depth <= 0 || floatGlobals_.empty()) {
            if (!floatLocals_.empty() && rng_.nextBool(0.5))
                return floatLocals_[rng_.nextBelow(
                    floatLocals_.size())];
            if (!floatGlobals_.empty() && rng_.nextBool(0.5))
                return floatGlobals_[rng_.nextBelow(
                    floatGlobals_.size())];
            return floatLiteral();
        }
        // +, -, * only: float division can trap on a zero
        // denominator, and the generator guarantees fault-freedom.
        static const char *const ops[] = {" + ", " - ", " * "};
        return "(" + floatExpr(depth - 1) +
               ops[rng_.nextBelow(3)] + floatExpr(depth - 1) + ")";
    }

    std::string
    comparison(int depth)
    {
        static const char *const ops[] = {" == ", " != ", " < ",
                                          " <= ", " > ", " >= "};
        if (opts_.useFloats && !floatGlobals_.empty() &&
            rng_.nextBool(0.2)) {
            return "(" + floatExpr(1) + ops[rng_.nextBelow(6)] +
                   floatExpr(1) + ")";
        }
        return "(" + intExpr(depth - 1) + ops[rng_.nextBelow(6)] +
               intExpr(depth - 1) + ")";
    }

    std::string
    condExpr(int depth)
    {
        if (depth > 1 && rng_.nextBool(0.3)) {
            const char *op = rng_.nextBool() ? " && " : " || ";
            return "(" + comparison(depth - 1) + op +
                   comparison(depth - 1) + ")";
        }
        return comparison(depth);
    }

    std::string
    intExpr(int depth)
    {
        if (depth <= 0)
            return intLeaf();
        switch (rng_.nextBelow(12)) {
          case 0:
          case 1: {
            static const char *const ops[] = {" + ", " - ", " * "};
            return "(" + intExpr(depth - 1) +
                   ops[rng_.nextBelow(3)] + intExpr(depth - 1) +
                   ")";
          }
          case 2: {
            static const char *const ops[] = {" & ", " | ", " ^ "};
            return "(" + intExpr(depth - 1) +
                   ops[rng_.nextBelow(3)] + intExpr(depth - 1) +
                   ")";
          }
          case 3: {
            // Shift amounts are masked small to keep the values
            // interesting (the emulator itself accepts any amount).
            const char *op = rng_.nextBool() ? " << " : " >> ";
            return "(" + intExpr(depth - 1) + op + "((" +
                   intExpr(depth - 1) + ") & 15))";
          }
          case 4: {
            // Divide/modulo by `(e & 7) + 1`: always in [1, 8], so
            // neither the zero-denominator trap nor the
            // INT_MIN / -1 overflow can fire.
            const char *op = rng_.nextBool() ? " / " : " % ";
            return "(" + intExpr(depth - 1) + op + "(((" +
                   intExpr(depth - 1) + ") & 7) + 1))";
          }
          case 5:
            return comparison(depth);
          case 6: {
            static const char *const ops[] = {"-", "~", "!"};
            return std::string(ops[rng_.nextBelow(3)]) + "(" +
                   intExpr(depth - 1) + ")";
          }
          case 7:
            return "(" + condExpr(depth - 1) + " ? " +
                   intExpr(depth - 1) + " : " + intExpr(depth - 1) +
                   ")";
          case 8:
            if (!helpers_.empty() && callBudget_ > 0) {
                --callBudget_;
                return helpers_[rng_.nextBelow(helpers_.size())] +
                       "(" + intExpr(depth - 1) + ", " +
                       intExpr(depth - 1) + ")";
            }
            return intLeaf();
          case 9:
            return arrayAccess(depth - 1);
          case 10:
            if (rng_.nextBool(0.3))
                return "getc()";
            return intLeaf();
          default:
            return intLeaf();
        }
    }

    // --- statements ---

    void
    emitStmt(int depth)
    {
        const int roll = static_cast<int>(rng_.nextBelow(10));
        if (depth < opts_.maxDepth) {
            if (roll == 0) {
                emitIf(depth);
                return;
            }
            if (roll == 1 && iterBudget_ > 1) {
                emitLoop(depth);
                return;
            }
        }
        if (roll == 2) {
            indent();
            os_ << arrayAccess(2) << " = "
                << intExpr(opts_.maxExprDepth - 1) << ";\n";
            return;
        }
        if (roll == 3) {
            indent();
            os_ << "putc(" << intExpr(2) << ");\n";
            return;
        }
        if (roll == 4) {
            emitDecl();
            return;
        }
        if (roll == 5 && !loopKinds_.empty()) {
            // Early exits ride inside a conditional so the block
            // never contains statically dead trailing statements.
            // `continue` needs the innermost loop to be a `for`
            // (its continue target is the step block, which keeps
            // the protected induction variable advancing).
            const bool canContinue = loopKinds_.back() == 'f';
            const char *kw =
                canContinue && rng_.nextBool(0.4) ? "continue"
                                                  : "break";
            indent();
            os_ << "if (" << condExpr(2) << ") { " << kw
                << "; }\n";
            return;
        }
        if (roll == 6 && opts_.useFloats &&
            !floatLocals_.empty()) {
            indent();
            os_ << floatLocals_[rng_.nextBelow(
                       floatLocals_.size())]
                << " = " << floatExpr(2) << ";\n";
            return;
        }
        // Default: integer assignment.
        indent();
        static const char *const ops[] = {" = ", " += ", " -= "};
        os_ << assignTarget() << ops[rng_.nextBelow(3)]
            << intExpr(opts_.maxExprDepth) << ";\n";
    }

    void
    emitDecl()
    {
        if (opts_.useFloats && rng_.nextBool(0.25)) {
            std::string name = freshName("f");
            indent();
            os_ << "float " << name << " = " << floatLiteral()
                << ";\n";
            floatLocals_.push_back(name);
            return;
        }
        std::string name = freshName("v");
        indent();
        os_ << "int " << name << " = " << intExpr(2) << ";\n";
        intLocals_.push_back(name);
    }

    void
    emitIf(int depth)
    {
        indent();
        os_ << "if (" << condExpr(3) << ") {\n";
        emitBlock(depth + 1);
        if (rng_.nextBool(0.5)) {
            indent();
            os_ << "} else {\n";
            emitBlock(depth + 1);
        }
        indent();
        os_ << "}\n";
    }

    /**
     * A counted loop whose induction variable the body cannot touch.
     * Three surface forms exercise the frontend's three loop
     * shapes; all share the trip-count budget so nests stay small.
     */
    void
    emitLoop(int depth)
    {
        const int maxTrip =
            std::min(opts_.maxLoopIters, iterBudget_);
        const int trip =
            1 + static_cast<int>(rng_.nextBelow(
                    static_cast<std::uint64_t>(maxTrip)));
        const int savedBudget = iterBudget_;
        iterBudget_ = std::max(1, iterBudget_ / trip);

        std::string idx = freshName("i");
        const int form = static_cast<int>(rng_.nextBelow(4));
        if (form == 0) {
            // while: counter declared outside, stepped as the last
            // statement of the body. `continue` would skip the
            // step, so the loop-kind stack marks it 'w'.
            indent();
            os_ << "int " << idx << " = 0;\n";
            indent();
            os_ << "while (" << idx << " < " << trip << ") {\n";
            loopKinds_.push_back('w');
            emitBlock(depth + 1, idx);
            loopKinds_.pop_back();
            indent();
            os_ << "    " << idx << " = " << idx << " + 1;\n";
            indent();
            os_ << "}\n";
        } else if (form == 1) {
            // do-while: body runs at least once; the counter step
            // is the last body statement, so no `continue` either.
            indent();
            os_ << "int " << idx << " = 0;\n";
            indent();
            os_ << "do {\n";
            loopKinds_.push_back('w');
            emitBlock(depth + 1, idx);
            loopKinds_.pop_back();
            indent();
            os_ << "    " << idx << " = " << idx << " + 1;\n";
            indent();
            os_ << "} while (" << idx << " < " << trip << ");\n";
        } else {
            // for: the step block is the continue target, so
            // `continue` is safe in the body.
            indent();
            os_ << "for (int " << idx << " = 0; " << idx << " < "
                << trip << "; " << idx << " = " << idx
                << " + 1) {\n";
            loopKinds_.push_back('f');
            emitBlock(depth + 1, idx);
            loopKinds_.pop_back();
            indent();
            os_ << "}\n";
        }
        iterBudget_ = savedBudget;
    }

    /** Emit `{` contents with @p protectedVar unassignable. */
    void
    emitBlock(int depth, const std::string &protectedVar = "")
    {
        const std::size_t savedForbidden = forbidden_.size();
        const std::size_t savedInts = intLocals_.size();
        const std::size_t savedFloats = floatLocals_.size();
        if (!protectedVar.empty()) {
            forbidden_.push_back(protectedVar);
            // The counter is readable inside the body.
            intLocals_.push_back(protectedVar);
        }
        ++indent_;
        const int stmts =
            1 + static_cast<int>(rng_.nextBelow(
                    static_cast<std::uint64_t>(
                        opts_.maxBlockStmts)));
        for (int i = 0; i < stmts; ++i)
            emitStmt(depth);
        --indent_;
        forbidden_.resize(savedForbidden);
        intLocals_.resize(savedInts);
        floatLocals_.resize(savedFloats);
    }

    Rng rng_;
    GeneratorOptions opts_;
    std::ostringstream os_;
    int indent_ = 0;
    int nameCounter_ = 0;

    std::vector<ArrayInfo> arrays_;
    std::vector<std::string> intGlobals_;
    std::vector<std::string> floatGlobals_;
    std::vector<std::string> helpers_;

    // Per-function state.
    std::vector<std::string> intLocals_;
    std::vector<std::string> floatLocals_;
    std::vector<std::string> forbidden_;
    std::vector<char> loopKinds_; ///< 'f' = for, 'w' = while-like.
    int iterBudget_ = 512;
    /** Helper call sites per function (0 inside helpers). */
    int callBudget_ = 0;
};

} // namespace

GeneratedProgram
generateProgram(std::uint64_t seed, const GeneratorOptions &opts)
{
    GeneratedProgram result;
    result.seed = seed;

    // Independent stream for the input so program shape and input
    // bytes don't correlate.
    Rng inputRng(seed ^ 0x9e3779b97f4a7c15ull);
    const std::size_t len = inputRng.nextBelow(
        static_cast<std::uint64_t>(opts.maxInputBytes) + 1);
    result.input.reserve(len);
    for (std::size_t i = 0; i < len; ++i)
        result.input.push_back(
            static_cast<char>(inputRng.nextBelow(256)));

    ProgramBuilder builder(seed, opts);
    result.source = builder.build();
    return result;
}

} // namespace predilp
