/**
 * @file
 * Standalone differential-fuzzing driver. Runs the oracle over a
 * seed range in parallel and reports every failure with its
 * reproducer path. Exit status 0 = every seed agreed, 1 = at least
 * one divergence/verifier failure/trap, 2 = bad usage.
 *
 * Usage:
 *   fuzz_main [--seeds N] [--start S] [--fuel N]
 *             [--repro-dir DIR] [--no-ablations] [--threads N]
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "fuzz/oracle.hh"
#include "support/thread_pool.hh"

using namespace predilp;

namespace
{

bool
parseU64(const char *text, std::uint64_t &out)
{
    char *end = nullptr;
    unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        return false;
    out = value;
    return true;
}

int
usage()
{
    std::cerr << "usage: fuzz_main [--seeds N] [--start S]"
                 " [--fuel N] [--repro-dir DIR] [--no-ablations]"
                 " [--threads N]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seeds = 200;
    std::uint64_t start = 0;
    std::uint64_t threads = 0;
    OracleOptions opts;
    opts.reproducerDir = "fuzz-reproducers";

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto takeValue = [&](std::uint64_t &out) {
            return i + 1 < argc && parseU64(argv[++i], out);
        };
        if (arg == "--seeds") {
            if (!takeValue(seeds))
                return usage();
        } else if (arg == "--start") {
            if (!takeValue(start))
                return usage();
        } else if (arg == "--fuel") {
            if (!takeValue(opts.fuel))
                return usage();
        } else if (arg == "--threads") {
            if (!takeValue(threads))
                return usage();
        } else if (arg == "--repro-dir") {
            if (i + 1 >= argc)
                return usage();
            opts.reproducerDir = argv[++i];
        } else if (arg == "--no-ablations") {
            opts.checkAblations = false;
        } else {
            return usage();
        }
    }

    ThreadPool pool(static_cast<int>(threads));
    std::mutex mutex;
    std::vector<OracleFailure> failures;
    std::uint64_t configsRun = 0;

    pool.parallelFor(seeds, [&](std::size_t i) {
        OracleResult result = runDifferentialOracle(
            start + static_cast<std::uint64_t>(i), opts);
        std::lock_guard<std::mutex> lock(mutex);
        configsRun += result.configsRun;
        for (OracleFailure &failure : result.failures)
            failures.push_back(std::move(failure));
    });

    for (const OracleFailure &failure : failures) {
        std::cerr << "FAIL seed=" << failure.seed << " config="
                  << failure.config << " kind=" << failure.kind
                  << "\n  " << failure.message << "\n";
        if (!failure.reproducerPath.empty())
            std::cerr << "  reproducer: " << failure.reproducerPath
                      << "\n";
    }
    std::cout << "fuzz: " << seeds << " seeds, " << configsRun
              << " configs compared, " << failures.size()
              << " failure(s)\n";
    return failures.empty() ? 0 : 1;
}
