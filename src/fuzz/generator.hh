/**
 * @file
 * Seeded random ILC program generation for the differential fuzz
 * oracle. generateProgram(seed) produces a self-contained ILC
 * program plus an input byte string, both fully determined by the
 * seed, that is guaranteed to compile, verify, terminate within a
 * modest dynamic-instruction budget, and execute without faults
 * under every processor model:
 *
 *  - every loop is counted with a protected induction variable the
 *    body cannot assign, and nesting is budgeted so the product of
 *    trip counts stays small;
 *  - array indices are masked to the (power-of-two) array size, so
 *    loads and stores always hit the memory image;
 *  - integer divide/modulo denominators are generated as
 *    `((e & 7) + 1)`, never zero; float division is not generated;
 *  - helpers only call lower-numbered helpers, so calls never
 *    recurse and the stack stays bounded;
 *  - `continue` is only emitted where the innermost loop is a `for`
 *    (whose continue target is the step block).
 *
 * The program ends in a checksum epilogue that folds every global
 * scalar and array into the output bytes and the exit value, so a
 * miscompiled store anywhere is observable architecturally.
 */

#ifndef PREDILP_FUZZ_GENERATOR_HH
#define PREDILP_FUZZ_GENERATOR_HH

#include <cstdint>
#include <string>

namespace predilp
{

/** Size/shape knobs for one generated program. */
struct GeneratorOptions
{
    int maxHelpers = 3;     ///< helper functions besides main.
    int maxTopStmts = 10;   ///< statements in main's body.
    int maxBlockStmts = 5;  ///< statements per nested block.
    int maxDepth = 3;       ///< statement nesting depth.
    int maxExprDepth = 4;   ///< expression tree depth.
    int maxLoopIters = 16;  ///< per-loop constant trip count.
    int maxInputBytes = 96; ///< random input length bound.
    bool useFloats = true;  ///< generate float locals/arithmetic.
};

/** One generated differential-test case. */
struct GeneratedProgram
{
    std::uint64_t seed = 0;
    std::string source; ///< self-contained ILC program.
    std::string input;  ///< bytes fed to the program.
};

/** Generate the test case for @p seed (pure function of its args). */
GeneratedProgram generateProgram(std::uint64_t seed,
                                 const GeneratorOptions &opts = {});

} // namespace predilp

#endif // PREDILP_FUZZ_GENERATOR_HH
