#include "fuzz/oracle.hh"

#include <array>
#include <memory>

#include "driver/pipeline.hh"
#include "driver/reproducer.hh"
#include "support/diag.hh"
#include "trace/replay.hh"

namespace predilp
{

namespace
{

/** One compile configuration the oracle compares. */
struct OracleConfig
{
    std::string name;
    Model model = Model::FullPred;
    AblationFlags ablation;
};

/** Flip ablation flag @p index (order matches AblationFlags::key). */
AblationFlags
flipFlag(AblationFlags flags, int index)
{
    switch (index) {
      case 0: flags.promotion = !flags.promotion; break;
      case 1: flags.branchCombining = !flags.branchCombining; break;
      case 2: flags.heightReduction = !flags.heightReduction; break;
      case 3: flags.unrolling = !flags.unrolling; break;
      case 4: flags.orTree = !flags.orTree; break;
      default: flags.useSelect = !flags.useSelect; break;
    }
    return flags;
}

const char *
flagName(int index)
{
    static const char *const names[] = {
        "promotion",  "branchCombining", "heightReduction",
        "unrolling",  "orTree",          "useSelect"};
    return names[index];
}

/**
 * The configurations compared for @p seed: the three models under
 * default flags, plus (optionally) two single-flag flips rotated by
 * the seed. Each flip targets the model whose pipeline actually
 * reads the flag (orTree/useSelect only exist under CondMove), so
 * no compile is a cache-key duplicate of a default-flag model.
 */
std::vector<OracleConfig>
makeConfigs(std::uint64_t seed, bool checkAblations)
{
    std::vector<OracleConfig> configs;
    configs.push_back({"Superblock", Model::Superblock, {}});
    configs.push_back({"CondMove", Model::CondMove, {}});
    configs.push_back({"FullPred", Model::FullPred, {}});
    if (!checkAblations)
        return configs;
    for (std::uint64_t i = 0; i < 2; ++i) {
        const int flag = static_cast<int>((seed + i * 3) % 6);
        // Route the flip to a model whose pipeline reads the flag
        // (AblationFlags::canonicalFor): branchCombining only
        // matters under FullPred, orTree/useSelect only under
        // CondMove; the shared flags alternate by seed.
        Model model;
        switch (flag) {
          case 1:
            model = Model::FullPred;
            break;
          case 4:
          case 5:
            model = Model::CondMove;
            break;
          default:
            model = (seed + i) % 2 == 0 ? Model::FullPred
                                        : Model::CondMove;
            break;
        }
        OracleConfig config;
        config.model = model;
        config.ablation = flipFlag({}, flag);
        config.name = modelName(model) + "/flip-" + flagName(flag);
        configs.push_back(config);
    }
    return configs;
}

} // namespace

OracleResult
runDifferentialOracle(std::uint64_t seed, const OracleOptions &opts)
{
    OracleResult result;
    result.seed = seed;

    GeneratedProgram gen = generateProgram(seed, opts.generator);

    auto recordFailure = [&](const std::string &configName) {
        std::exception_ptr ep = std::current_exception();
        OracleFailure failure;
        failure.seed = seed;
        failure.config = configName;
        failure.kind = classifyException(ep);
        try {
            std::rethrow_exception(ep);
        } catch (const std::exception &e) {
            failure.message = e.what();
        } catch (...) {
            failure.message = "non-standard exception";
        }
        if (!opts.reproducerDir.empty()) {
            ReproducerSpec spec;
            spec.title = "fuzz-seed-" + std::to_string(seed) + "-" +
                         configName;
            spec.seed = seed;
            spec.hasSeed = true;
            spec.model = configName;
            spec.kind = failure.kind;
            spec.message = failure.message;
            spec.input = gen.input;
            spec.source = gen.source;
            failure.reproducerPath =
                writeReproducer(opts.reproducerDir, spec);
        }
        result.failures.push_back(std::move(failure));
    };

    // The reference: frontend + classical optimization, emulated
    // functionally. Every model must reproduce it bit-for-bit.
    RunResult reference;
    try {
        reference = runReference(gen.source, gen.input, opts.fuel);
    } catch (...) {
        // A generated program must never fail its reference run —
        // this is a generator bug (or a frontend/emulator bug the
        // generator exposed), worth a reproducer either way.
        recordFailure("reference");
        return result;
    }

    for (const OracleConfig &config :
         makeConfigs(seed, opts.checkAblations)) {
        try {
            CompileOptions compileOpts;
            compileOpts.model = config.model;
            compileOpts.ablation = config.ablation;
            compileOpts.profileInput = gen.input;
            compileOpts.maxProfileInstrs = opts.fuel;
            compileOpts.verifyEachPass = opts.verifyEachPass;
            std::unique_ptr<Program> prog =
                compileForModel(gen.source, compileOpts);

            // One emulation captures both the architectural result
            // and the trace the replay check prices.
            std::unique_ptr<TraceBuffer> buffer =
                capture(*prog, gen.input, opts.fuel);
            const RunResult &run = buffer->run();
            if (run.exitValue != reference.exitValue ||
                run.output != reference.output ||
                run.memHash != reference.memHash) {
                throw DivergenceError(detail::formatMessage(
                    config.name,
                    " diverged from reference: exit ",
                    run.exitValue, " vs ", reference.exitValue,
                    ", output ", run.output.size(), " vs ",
                    reference.output.size(), " bytes",
                    run.output == reference.output ? " (equal)"
                                                   : " (differ)",
                    ", memHash ", run.memHash, " vs ",
                    reference.memHash));
            }

            // Replay agreement: pricing the captured trace must
            // reproduce the emulation's architectural result.
            SimConfig sim;
            SimResult priced = replay(*buffer, sim);
            if (priced.exitValue != run.exitValue ||
                priced.output != run.output) {
                throw DivergenceError(detail::formatMessage(
                    config.name,
                    " replay disagreed with its own capture: "
                    "exit ",
                    priced.exitValue, " vs ", run.exitValue,
                    ", output ", priced.output.size(), " vs ",
                    run.output.size(), " bytes"));
            }
            ++result.configsRun;
        } catch (...) {
            recordFailure(config.name);
        }
    }
    return result;
}

} // namespace predilp
