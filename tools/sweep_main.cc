/**
 * @file
 * predilp_sweep: the sharded scenario-sweep grid driver CLI.
 *
 * Usage:
 *   predilp_sweep --spec grid.json [--workers N] [--out FILE]
 *   predilp_sweep --print-spec          # example grid spec
 *
 * Reads a declarative grid spec (see src/driver/sweep.hh and
 * DESIGN.md §6h), expands it into the cross product of cells, shards
 * the cells across N forked worker processes (trace-affine: cells
 * replaying the same captured traces stay on one worker, and each
 * worker prices its shard with one batched replay pass per trace),
 * and writes one consolidated BENCH_sweep.json. Point PREDILP_STORE
 * at a directory to let the workers share captured traces — a warm
 * re-run of the same grid then performs zero compiles and captures.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "driver/bench_io.hh"
#include "driver/sweep.hh"
#include "support/diag.hh"
#include "support/faultpoint.hh"

namespace
{

const char *const exampleSpec = R"({
  "workloads": ["cmp", "wc"],
  "models": ["superblock", "cond_move", "full_pred"],
  "scale": 1,
  "base": {"perfect_caches": true},
  "axes": {
    "issue_width": [2, 4, 8],
    "btb_entries": [256, 1024],
    "perfect_caches": [true, false]
  }
})";

int
usage(std::ostream &os, int code)
{
    os << "usage: predilp_sweep --spec FILE [--workers N] "
          "[--out FILE] [--no-batch]\n"
          "                     [--retries N] [--watchdog-sec S] "
          "[--no-degrade]\n"
          "       predilp_sweep --print-spec | "
          "--list-fault-points\n"
          "\n"
          "  --spec FILE    grid spec (JSON; see --print-spec)\n"
          "  --workers N    forked worker processes (default 1 = "
          "sequential)\n"
          "  --out FILE     consolidated report path (default "
          "BENCH_sweep.json)\n"
          "  --no-batch     evaluate cell by cell instead of one "
          "batched replay\n"
          "                 pass per trace (identical output; for "
          "comparison/CI)\n"
          "  --retries N    retry a failed shard up to N times on "
          "fresh workers\n"
          "                 (default 2; 0 disables retry)\n"
          "  --watchdog-sec S  SIGKILL and retry a worker running "
          "longer than S\n"
          "                 seconds (default: "
          "PREDILP_SWEEP_WATCHDOG_SEC, else off)\n"
          "  --no-degrade   fail the sweep when a shard exhausts "
          "its retries,\n"
          "                 instead of emitting degraded cell "
          "records\n"
          "  --print-spec   print an example grid spec and exit\n"
          "  --list-fault-points  print every PREDILP_FAULTS point "
          "name and exit\n"
          "\n"
          "Environment: PREDILP_STORE, PREDILP_STORE_MODE, "
          "PREDILP_THREADS, PREDILP_EMU,\n"
          "PREDILP_FAULTS, PREDILP_SWEEP_WATCHDOG_SEC (see EnvConfig "
          "in src/support/env.hh)\n"
          "apply to every worker.\n";
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace predilp;

    std::string specPath;
    std::string outPath = "BENCH_sweep.json";
    int workers = 1;
    bool batch = true;
    SweepHealPolicy heal;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--print-spec") {
            std::cout << exampleSpec << "\n";
            return 0;
        }
        if (arg == "--list-fault-points") {
            for (const std::string &name :
                 faultpoints::knownPoints()) {
                std::cout << name << "\n";
            }
            return 0;
        }
        if (arg == "--help" || arg == "-h")
            return usage(std::cout, 0);
        if (arg == "--spec" && i + 1 < argc) {
            specPath = argv[++i];
        } else if (arg == "--workers" && i + 1 < argc) {
            workers = std::atoi(argv[++i]);
            if (workers < 1) {
                std::cerr << "--workers must be >= 1\n";
                return 2;
            }
        } else if (arg == "--out" && i + 1 < argc) {
            outPath = argv[++i];
        } else if (arg == "--no-batch") {
            batch = false;
        } else if (arg == "--retries" && i + 1 < argc) {
            int retries = std::atoi(argv[++i]);
            if (retries < 0) {
                std::cerr << "--retries must be >= 0\n";
                return 2;
            }
            heal.maxAttempts = retries + 1;
        } else if (arg == "--watchdog-sec" && i + 1 < argc) {
            heal.watchdogSec = std::atof(argv[++i]);
            if (heal.watchdogSec <= 0) {
                std::cerr << "--watchdog-sec must be > 0\n";
                return 2;
            }
        } else if (arg == "--no-degrade") {
            heal.degradeCells = false;
        } else {
            std::cerr << "unknown argument '" << arg << "'\n";
            return usage(std::cerr, 2);
        }
    }
    if (specPath.empty()) {
        std::cerr << "missing --spec\n";
        return usage(std::cerr, 2);
    }

    try {
        WallTimer wall;
        std::ifstream in(specPath, std::ios::binary);
        if (!in) {
            std::cerr << "cannot read spec " << specPath << "\n";
            return 1;
        }
        std::ostringstream text;
        text << in.rdbuf();
        SweepSpec spec =
            SweepSpec::fromJson(JsonValue::parse(text.str()));

        SweepOutcome outcome =
            runSweep(spec, workers, outPath, batch, heal);
        std::cout << "-- sweep: " << outcome.cells << " cells, "
                  << outcome.workers << " workers";
        if (outcome.workerRetries > 0)
            std::cout << ", " << outcome.workerRetries
                      << " retries";
        if (outcome.degradedCells > 0)
            std::cout << ", " << outcome.degradedCells
                      << " degraded";
        std::cout << " -> " << outcome.path << "\n";
        printPhaseTiming(std::cout, outcome.timing, wall.seconds(),
                         outcome.workers);
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "predilp_sweep: " << e.what() << "\n";
        return 1;
    }
}
