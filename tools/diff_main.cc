/**
 * @file
 * predilp_diff: cross-run drift classification over result sets
 * (driver/diff.hh), plus a store provenance verifier.
 *
 *   predilp_diff --before PATH --after PATH [--json] [--verbose]
 *   predilp_diff --verify STORE_DIR
 *
 * PATH is a BENCH_*.json file, a directory of them, or a store /
 * certified-records directory. Exit 0 when no unexplained drift (or
 * the store verifies), 1 on unexplained drift / violations, 2 on
 * usage or I/O errors — so CI can gate on the one failure mode that
 * means "same provenance, different figures".
 */

#include <cstring>
#include <iostream>
#include <string>

#include "driver/diff.hh"

namespace
{

int
usage(int code)
{
    std::cerr
        << "usage: predilp_diff --before PATH --after PATH"
           " [--json] [--verbose]\n"
           "       predilp_diff --verify STORE_DIR\n"
           "\n"
           "Compares two result sets (BENCH_*.json files/dirs or\n"
           "store directories of certified records) and classifies\n"
           "every cell as identical, explained (a provenance digest\n"
           "changed), or unexplained drift (same provenance,\n"
           "different figures). --verify checks a store's\n"
           "artifact/sidecar/record provenance contract instead.\n"
           "\n"
           "exit status: 0 no unexplained drift (or store clean),\n"
           "             1 unexplained drift / violations, 2 usage\n";
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string before;
    std::string after;
    std::string verifyDir;
    bool json = false;
    bool verbose = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--before") == 0 && i + 1 < argc) {
            before = argv[++i];
        } else if (std::strcmp(arg, "--after") == 0 &&
                   i + 1 < argc) {
            after = argv[++i];
        } else if (std::strcmp(arg, "--verify") == 0 &&
                   i + 1 < argc) {
            verifyDir = argv[++i];
        } else if (std::strcmp(arg, "--json") == 0) {
            json = true;
        } else if (std::strcmp(arg, "--verbose") == 0) {
            verbose = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            return usage(0);
        } else {
            std::cerr << "unknown argument '" << arg << "'\n";
            return usage(2);
        }
    }

    try {
        if (!verifyDir.empty()) {
            if (!before.empty() || !after.empty())
                return usage(2);
            int violations = predilp::verifyStoreProvenance(
                std::cout, verifyDir);
            std::cout << "verify: " << verifyDir << ": "
                      << violations << " violation(s)\n";
            return violations > 0 ? 1 : 0;
        }
        if (before.empty() || after.empty())
            return usage(2);

        predilp::ResultSet beforeSet =
            predilp::loadResultSet(before);
        predilp::ResultSet afterSet = predilp::loadResultSet(after);
        for (const predilp::ResultSet *set :
             {&beforeSet, &afterSet}) {
            if (set->invalidRecords > 0)
                std::cerr << "warning: skipped "
                          << set->invalidRecords
                          << " invalid sealed record(s) in "
                          << set->label << "\n";
        }
        predilp::DiffReport report =
            predilp::diffResultSets(beforeSet, afterSet);
        if (json)
            std::cout << predilp::diffReportToJson(report).dump()
                      << "\n";
        else
            predilp::printDiffReport(std::cout, report, verbose);
        return report.hasUnexplainedDrift() ? 1 : 0;
    } catch (const std::exception &e) {
        std::cerr << "predilp_diff: " << e.what() << "\n";
        return 2;
    }
}
